#include "array/chunk.h"

#include <algorithm>
#include <bit>

#include "array/bitpack.h"
#include "common/coding.h"
#include "common/lzw.h"

namespace paradise {

namespace {
// Serialized layouts. Every unwrapped blob starts with:
//   [0]     tag byte: 0 = dense, 1 = offset-compressed, 3 = diff-sequence,
//           4 = bit-packed
//   [1,5)   capacity (cell count of the chunk)
// Offset-compressed (§3.3): fixed32 valid count, then per valid cell
// fixed32 offset + fixed64 value, in increasing offset order.
// Dense: validity bitmap of ceil(capacity/8) bytes, then capacity fixed64
// values (invalid cells hold zero).
// LZW-wrapped (kLzwDense): tag byte 2 followed by the LZW stream of the
// dense serialization. Unwrapped by UnwrapChunkBlob before any view/parse.
//
// The two packed codecs share a 19-byte header:
//   [5,9)   valid count (fixed32)
//   [9]     width1: gap bits (diff-sequence) / offset bits (bit-packed)
//   [10]    value bits (0..64)
//   [11,19) value minimum (fixed64, two's complement int64)
// then nb = ceil(count / kPackedChunkBlock) fixed32 block-first offsets
// (the anchors / skip directory), then the codec's offset stream
// (byte-aligned), then the value stream (byte-aligned): count fields of
// val_bits holding (value - val_min) as unsigned.
//
// Diff-sequence (Szépkúti): each block's first entry is its anchor; the
// remaining count - nb entries store (offset[i] - offset[i-1] - 1) in
// gap_bits bits each. The gap slot of the j-th entry of block b (j >= 1) is
// b*(kPackedChunkBlock-1) + j - 1. A run of adjacent cells has all-zero
// gaps, so gap_bits is 0 and clustered chunks pay nothing per offset.
//
// Bit-packed: count absolute offsets of off_bits = bit_width(max offset)
// bits each — O(1) random access per entry, so probes binary-search the
// stream directly after a skip-directory lookup.
constexpr uint8_t kDenseTag = 0;
constexpr uint8_t kSparseTag = 1;
constexpr uint8_t kLzwTag = 2;
constexpr uint8_t kDiffSeqTag = 3;
constexpr uint8_t kBitPackedTag = 4;

constexpr size_t kPackedHeaderBytes = 19;

/// Measured bit widths of one chunk's entries, shared by the packed
/// serializers and the closed-form size arithmetic.
struct PackedStats {
  uint32_t num_blocks = 0;
  unsigned gap_bits = 0;  // max width of (in-block delta - 1)
  unsigned off_bits = 0;  // width of the largest (= last) offset
  unsigned val_bits = 0;  // width of (max value - min value)
  int64_t val_min = 0;
};

PackedStats ComputePackedStats(const std::vector<ChunkEntry>& entries) {
  PackedStats s;
  if (entries.empty()) return s;
  const size_t n = entries.size();
  s.num_blocks =
      static_cast<uint32_t>((n + kPackedChunkBlock - 1) / kPackedChunkBlock);
  s.off_bits = BitWidth(entries.back().offset);
  int64_t lo = entries[0].value;
  int64_t hi = entries[0].value;
  for (size_t i = 0; i < n; ++i) {
    lo = std::min(lo, entries[i].value);
    hi = std::max(hi, entries[i].value);
    if (i % kPackedChunkBlock != 0) {
      // Offsets are strictly increasing, so delta >= 1 and delta - 1 packs.
      const uint32_t delta = entries[i].offset - entries[i - 1].offset;
      s.gap_bits = std::max(s.gap_bits, BitWidth(delta - 1));
    }
  }
  s.val_min = lo;
  // Two's-complement subtraction in uint64 is exact for any int64 range.
  s.val_bits =
      BitWidth(static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo));
  return s;
}

uint64_t PackedSerializedBytes(uint8_t tag, const PackedStats& s, size_t n) {
  const uint64_t fields1 = tag == kDiffSeqTag ? n - s.num_blocks : n;
  const unsigned w1 = tag == kDiffSeqTag ? s.gap_bits : s.off_bits;
  return kPackedHeaderBytes + uint64_t{4} * s.num_blocks +
         (fields1 * w1 + 7) / 8 +
         (static_cast<uint64_t>(n) * s.val_bits + 7) / 8;
}

std::string SerializePacked(uint8_t tag, uint32_t capacity,
                            const std::vector<ChunkEntry>& entries) {
  const PackedStats s = ComputePackedStats(entries);
  const size_t n = entries.size();
  const unsigned w1 = tag == kDiffSeqTag ? s.gap_bits : s.off_bits;
  std::string out(PackedSerializedBytes(tag, s, n), '\0');
  out[0] = static_cast<char>(tag);
  EncodeFixed32(out.data() + 1, capacity);
  EncodeFixed32(out.data() + 5, static_cast<uint32_t>(n));
  out[9] = static_cast<char>(w1);
  out[10] = static_cast<char>(s.val_bits);
  EncodeFixed64(out.data() + 11, static_cast<uint64_t>(s.val_min));
  char* anchors = out.data() + kPackedHeaderBytes;
  char* stream1 = anchors + uint64_t{4} * s.num_blocks;
  const uint64_t fields1 = tag == kDiffSeqTag ? n - s.num_blocks : n;
  char* values = stream1 + (fields1 * w1 + 7) / 8;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t j = static_cast<uint32_t>(i % kPackedChunkBlock);
    if (j == 0) {
      EncodeFixed32(anchors + 4 * (i / kPackedChunkBlock), entries[i].offset);
    } else if (tag == kDiffSeqTag) {
      const uint64_t slot = i - (i / kPackedChunkBlock + 1);
      WriteBits(stream1, slot * w1, w1,
                entries[i].offset - entries[i - 1].offset - 1);
    }
    if (tag == kBitPackedTag) {
      WriteBits(stream1, static_cast<uint64_t>(i) * w1, w1, entries[i].offset);
    }
    WriteBits(values, static_cast<uint64_t>(i) * s.val_bits, s.val_bits,
              static_cast<uint64_t>(entries[i].value) -
                  static_cast<uint64_t>(s.val_min));
  }
  return out;
}
}  // namespace

Status Chunk::Put(uint32_t offset, int64_t value) {
  if (offset >= capacity_) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " beyond chunk capacity " +
                              std::to_string(capacity_));
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), offset,
      [](const ChunkEntry& e, uint32_t o) { return e.offset < o; });
  if (it != entries_.end() && it->offset == offset) {
    it->value = value;
  } else {
    entries_.insert(it, ChunkEntry{offset, value});
  }
  return Status::OK();
}

Status Chunk::AppendSorted(uint32_t offset, int64_t value) {
  if (offset >= capacity_) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " beyond chunk capacity " +
                              std::to_string(capacity_));
  }
  if (!entries_.empty() && entries_.back().offset >= offset) {
    return Status::InvalidArgument(
        "AppendSorted offsets must be strictly increasing");
  }
  entries_.push_back(ChunkEntry{offset, value});
  return Status::OK();
}

std::optional<int64_t> Chunk::Get(uint32_t offset) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), offset,
      [](const ChunkEntry& e, uint32_t o) { return e.offset < o; });
  if (it != entries_.end() && it->offset == offset) return it->value;
  return std::nullopt;
}

void Chunk::Erase(uint32_t offset) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), offset,
      [](const ChunkEntry& e, uint32_t o) { return e.offset < o; });
  if (it != entries_.end() && it->offset == offset) entries_.erase(it);
}

uint64_t Chunk::SerializedBytes(ChunkFormat format) const {
  switch (format) {
    case ChunkFormat::kDense:
      return DenseBytes(capacity_);
    case ChunkFormat::kOffsetCompressed:
      return SparseBytes(num_valid());
    case ChunkFormat::kDiffSequence:
      return PackedSerializedBytes(kDiffSeqTag, ComputePackedStats(entries_),
                                   entries_.size());
    case ChunkFormat::kBitPacked:
      return PackedSerializedBytes(kBitPackedTag, ComputePackedStats(entries_),
                                   entries_.size());
    case ChunkFormat::kAuto:
      return SerializedBytes(ResolveFormat(ChunkFormat::kAuto));
    case ChunkFormat::kLzwDense:
      // Data-dependent: the only format without a closed form.
      return Serialize(ChunkFormat::kLzwDense).size();
  }
  return 0;
}

ChunkFormat Chunk::ResolveFormat(ChunkFormat format, bool allow_packed) const {
  if (format != ChunkFormat::kAuto) return format;
  // Candidates in decode-cost order — a costlier-to-decode format must be
  // STRICTLY smaller to win. This keeps the legacy sparse-vs-dense tie
  // resolving to offset-compressed, and prefers bit-packed (O(1) entry
  // access) over diff-sequence (block decode) at equal size.
  ChunkFormat best = ChunkFormat::kOffsetCompressed;
  uint64_t best_bytes = SerializedBytes(best);
  auto consider = [&](ChunkFormat f) {
    const uint64_t bytes = SerializedBytes(f);
    if (bytes < best_bytes) {
      best = f;
      best_bytes = bytes;
    }
  };
  consider(ChunkFormat::kDense);
  if (allow_packed) {
    consider(ChunkFormat::kBitPacked);
    consider(ChunkFormat::kDiffSequence);
  }
  return best;
}

std::string Chunk::Serialize(ChunkFormat format, bool allow_packed) const {
  if (format == ChunkFormat::kLzwDense) {
    std::string out(1, static_cast<char>(kLzwTag));
    out.append(LzwCompress(Serialize(ChunkFormat::kDense)));
    return out;
  }
  const ChunkFormat resolved = ResolveFormat(format, allow_packed);
  if (resolved == ChunkFormat::kDiffSequence) {
    return SerializePacked(kDiffSeqTag, capacity_, entries_);
  }
  if (resolved == ChunkFormat::kBitPacked) {
    return SerializePacked(kBitPackedTag, capacity_, entries_);
  }
  std::string out;
  if (resolved == ChunkFormat::kOffsetCompressed) {
    out.resize(9 + entries_.size() * 12);
    out[0] = static_cast<char>(kSparseTag);
    EncodeFixed32(out.data() + 1, capacity_);
    EncodeFixed32(out.data() + 5, static_cast<uint32_t>(entries_.size()));
    char* p = out.data() + 9;
    for (const ChunkEntry& e : entries_) {
      EncodeFixed32(p, e.offset);
      EncodeFixed64(p + 4, static_cast<uint64_t>(e.value));
      p += 12;
    }
    return out;
  }
  const size_t bitmap_bytes = (capacity_ + 7) / 8;
  out.assign(5 + bitmap_bytes + static_cast<size_t>(capacity_) * 8, '\0');
  out[0] = static_cast<char>(kDenseTag);
  EncodeFixed32(out.data() + 1, capacity_);
  char* bitmap = out.data() + 5;
  char* values = out.data() + 5 + bitmap_bytes;
  for (const ChunkEntry& e : entries_) {
    bitmap[e.offset / 8] |= static_cast<char>(1u << (e.offset % 8));
    EncodeFixed64(values + static_cast<size_t>(e.offset) * 8,
                  static_cast<uint64_t>(e.value));
  }
  return out;
}

Result<std::string> UnwrapChunkBlob(std::string blob) {
  if (!blob.empty() && static_cast<uint8_t>(blob[0]) == kLzwTag) {
    return LzwDecompress({blob.data() + 1, blob.size() - 1});
  }
  return blob;
}

Result<Chunk> Chunk::Deserialize(std::string_view data) {
  if (!data.empty() && static_cast<uint8_t>(data[0]) == kLzwTag) {
    PARADISE_ASSIGN_OR_RETURN(std::string dense,
                              UnwrapChunkBlob(std::string(data)));
    return Deserialize(dense);
  }
  if (data.size() < 5) return Status::Corruption("chunk blob too small");
  const uint8_t tag = static_cast<uint8_t>(data[0]);
  const uint32_t capacity = DecodeFixed32(data.data() + 1);
  Chunk chunk(capacity);
  if (tag == kSparseTag) {
    if (data.size() < 9) return Status::Corruption("sparse chunk truncated");
    const uint32_t count = DecodeFixed32(data.data() + 5);
    if (data.size() != 9 + static_cast<size_t>(count) * 12) {
      return Status::Corruption("sparse chunk size mismatch");
    }
    chunk.entries_.reserve(count);
    const char* p = data.data() + 9;
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t offset = DecodeFixed32(p);
      const int64_t value = static_cast<int64_t>(DecodeFixed64(p + 4));
      p += 12;
      PARADISE_RETURN_IF_ERROR(chunk.AppendSorted(offset, value));
    }
    return chunk;
  }
  if (tag == kDenseTag) {
    const size_t bitmap_bytes = (static_cast<size_t>(capacity) + 7) / 8;
    if (data.size() != 5 + bitmap_bytes + static_cast<size_t>(capacity) * 8) {
      return Status::Corruption("dense chunk size mismatch");
    }
    const char* bitmap = data.data() + 5;
    const char* values = data.data() + 5 + bitmap_bytes;
    for (uint32_t off = 0; off < capacity; ++off) {
      if ((static_cast<uint8_t>(bitmap[off / 8]) >> (off % 8)) & 1) {
        PARADISE_RETURN_IF_ERROR(chunk.AppendSorted(
            off, static_cast<int64_t>(
                     DecodeFixed64(values + static_cast<size_t>(off) * 8))));
      }
    }
    return chunk;
  }
  if (tag == kDiffSeqTag || tag == kBitPackedTag) {
    // Decode through the view so there is exactly one reader of the packed
    // layouts; AppendSorted re-validates strict offset order and capacity
    // bounds cell by cell, which is the deep check dbverify relies on.
    PARADISE_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Make(data));
    chunk.entries_.reserve(view.num_valid());
    Status st = Status::OK();
    view.ForEach([&](uint32_t offset, int64_t value) {
      if (st.ok()) st = chunk.AppendSorted(offset, value);
    });
    PARADISE_RETURN_IF_ERROR(st);
    return chunk;
  }
  return Status::Corruption("unknown chunk format tag " + std::to_string(tag));
}

Result<ChunkView> ChunkView::Make(std::string_view blob) {
  if (blob.size() < 5) return Status::Corruption("chunk blob too small");
  const uint8_t tag = static_cast<uint8_t>(blob[0]);
  const uint32_t capacity = DecodeFixed32(blob.data() + 1);
  ChunkView view;
  view.data_ = blob.data();
  view.capacity_ = capacity;
  if (tag == kSparseTag) {
    if (blob.size() < 9) return Status::Corruption("sparse chunk truncated");
    const uint32_t count = DecodeFixed32(blob.data() + 5);
    if (blob.size() != 9 + static_cast<size_t>(count) * 12) {
      return Status::Corruption("sparse chunk size mismatch");
    }
    view.encoding_ = ChunkEncoding::kSparse;
    view.num_valid_ = count;
    return view;
  }
  if (tag == kDenseTag) {
    const size_t bitmap_bytes = (static_cast<size_t>(capacity) + 7) / 8;
    if (blob.size() != 5 + bitmap_bytes + static_cast<size_t>(capacity) * 8) {
      return Status::Corruption("dense chunk size mismatch");
    }
    // Valid count is not stored in the dense format; count the bitmap.
    uint32_t valid = 0;
    for (size_t i = 0; i < bitmap_bytes; ++i) {
      valid += static_cast<uint32_t>(
          std::popcount(static_cast<unsigned char>(blob[5 + i])));
    }
    view.encoding_ = ChunkEncoding::kDense;
    view.num_valid_ = valid;
    return view;
  }
  if (tag == kDiffSeqTag || tag == kBitPackedTag) {
    const char* name = tag == kDiffSeqTag ? "diff-sequence" : "bit-packed";
    if (blob.size() < kPackedHeaderBytes) {
      return Status::Corruption(std::string(name) + " chunk truncated");
    }
    const uint32_t count = DecodeFixed32(blob.data() + 5);
    const unsigned width1 = static_cast<uint8_t>(blob[9]);
    const unsigned val_bits = static_cast<uint8_t>(blob[10]);
    if (count > capacity) {
      return Status::Corruption(std::string(name) + " chunk count " +
                                std::to_string(count) + " exceeds capacity " +
                                std::to_string(capacity));
    }
    if (width1 > 32 || val_bits > 64) {
      return Status::Corruption(std::string(name) +
                                " chunk field width out of range");
    }
    const uint64_t nb = (count + kPackedChunkBlock - 1) / kPackedChunkBlock;
    const uint64_t fields1 = tag == kDiffSeqTag ? count - nb : count;
    const uint64_t expected = kPackedHeaderBytes + 4 * nb +
                              (fields1 * width1 + 7) / 8 +
                              (static_cast<uint64_t>(count) * val_bits + 7) / 8;
    if (blob.size() != expected) {
      return Status::Corruption(std::string(name) + " chunk size mismatch");
    }
    view.encoding_ = tag == kDiffSeqTag ? ChunkEncoding::kDiffSeq
                                        : ChunkEncoding::kBitPacked;
    view.num_valid_ = count;
    view.num_blocks_ = static_cast<uint32_t>(nb);
    view.width1_ = width1;
    view.val_bits_ = val_bits;
    view.val_min_ = static_cast<int64_t>(DecodeFixed64(blob.data() + 11));
    view.anchors_ = blob.data() + kPackedHeaderBytes;
    view.stream1_ = view.anchors_ + 4 * nb;
    view.values_ = view.stream1_ + (fields1 * width1 + 7) / 8;
    return view;
  }
  return Status::Corruption("unknown chunk format tag " + std::to_string(tag));
}

uint32_t ChunkView::BlockFirstOffset(uint32_t b) const {
  return DecodeFixed32(anchors_ + static_cast<size_t>(b) * 4);
}

int64_t ChunkView::PackedValue(uint32_t i) const {
  return static_cast<int64_t>(
      static_cast<uint64_t>(val_min_) +
      ReadBits(values_, static_cast<uint64_t>(i) * val_bits_, val_bits_));
}

uint32_t ChunkView::DecodeBlockOffsets(uint32_t b, uint32_t* offsets) const {
  const uint32_t start = b * kPackedChunkBlock;
  const uint32_t n = std::min(kPackedChunkBlock, num_valid_ - start);
  uint32_t off = BlockFirstOffset(b);
  offsets[0] = off;
  if (encoding_ == ChunkEncoding::kBitPacked) {
    for (uint32_t k = 1; k < n; ++k) {
      offsets[k] = static_cast<uint32_t>(ReadBits(
          stream1_, static_cast<uint64_t>(start + k) * width1_, width1_));
    }
    return n;
  }
  const uint64_t slot0 =
      static_cast<uint64_t>(b) * (kPackedChunkBlock - 1);
  for (uint32_t k = 1; k < n; ++k) {
    off += 1 + static_cast<uint32_t>(
                   ReadBits(stream1_, (slot0 + k - 1) * width1_, width1_));
    offsets[k] = off;
  }
  return n;
}

uint32_t ChunkView::DecodeBlock(uint32_t b, uint32_t* offsets,
                                int64_t* values) const {
  const uint32_t n = DecodeBlockOffsets(b, offsets);
  const uint32_t start = b * kPackedChunkBlock;
  for (uint32_t k = 0; k < n; ++k) values[k] = PackedValue(start + k);
  return n;
}

ChunkEntry ChunkView::SparseEntry(uint32_t i) const {
  switch (encoding_) {
    case ChunkEncoding::kSparse: {
      const char* p = data_ + 9 + static_cast<size_t>(i) * 12;
      return ChunkEntry{DecodeFixed32(p),
                        static_cast<int64_t>(DecodeFixed64(p + 4))};
    }
    case ChunkEncoding::kBitPacked:
      return ChunkEntry{
          static_cast<uint32_t>(ReadBits(
              stream1_, static_cast<uint64_t>(i) * width1_, width1_)),
          PackedValue(i)};
    case ChunkEncoding::kDiffSeq: {
      const uint32_t b = i / kPackedChunkBlock;
      const uint32_t j = i % kPackedChunkBlock;
      uint32_t off = BlockFirstOffset(b);
      const uint64_t slot0 =
          static_cast<uint64_t>(b) * (kPackedChunkBlock - 1);
      for (uint32_t k = 0; k < j; ++k) {
        off += 1 + static_cast<uint32_t>(
                       ReadBits(stream1_, (slot0 + k) * width1_, width1_));
      }
      return ChunkEntry{off, PackedValue(i)};
    }
    case ChunkEncoding::kDense:
      break;
  }
  return ChunkEntry{0, 0};
}

uint32_t ChunkView::SparseLowerBound(uint32_t offset, uint32_t from) const {
  if (encoding_ == ChunkEncoding::kSparse) {
    uint32_t lo = from, hi = num_valid_;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (SparseEntry(mid).offset < offset) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
  // Packed: binary-search the per-block directory for the last block whose
  // first offset is < `offset`, then search inside that one block. Entries
  // are globally sorted, so the lower bound over all entries clamped up to
  // `from` equals the lower bound over [from, num_valid).
  uint32_t blo = 0, bhi = num_blocks_;
  while (blo < bhi) {
    const uint32_t mid = blo + (bhi - blo) / 2;
    if (BlockFirstOffset(mid) < offset) {
      blo = mid + 1;
    } else {
      bhi = mid;
    }
  }
  uint32_t result = 0;
  if (blo > 0) {
    const uint32_t b = blo - 1;
    uint32_t offsets[kPackedChunkBlock];
    const uint32_t n = DecodeBlockOffsets(b, offsets);
    uint32_t lo = 0, hi = n;
    while (lo < hi) {
      const uint32_t mid = lo + (hi - lo) / 2;
      if (offsets[mid] < offset) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    result = b * kPackedChunkBlock + lo;
  }
  return std::max(result, from);
}

bool ChunkView::DenseValid(uint32_t offset) const {
  return (static_cast<uint8_t>(data_[5 + offset / 8]) >> (offset % 8)) & 1;
}

int64_t ChunkView::DenseValue(uint32_t offset) const {
  const size_t bitmap_bytes = (static_cast<size_t>(capacity_) + 7) / 8;
  return static_cast<int64_t>(DecodeFixed64(
      data_ + 5 + bitmap_bytes + static_cast<size_t>(offset) * 8));
}

std::optional<int64_t> ChunkView::Get(uint32_t offset) const {
  if (offset >= capacity_) return std::nullopt;
  if (sparse()) {
    const uint32_t pos = SparseLowerBound(offset, 0);
    if (pos < num_valid_) {
      const ChunkEntry e = SparseEntry(pos);
      if (e.offset == offset) return e.value;
    }
    return std::nullopt;
  }
  if (!DenseValid(offset)) return std::nullopt;
  return DenseValue(offset);
}

}  // namespace paradise
