#include "array/chunk.h"

#include <algorithm>
#include <bit>

#include "common/coding.h"
#include "common/lzw.h"

namespace paradise {

namespace {
// Serialized layouts. Both start with:
//   [0]     format byte: 0 = dense, 1 = offset-compressed
//   [1,5)   capacity (cell count of the chunk)
// Offset-compressed (§3.3): fixed32 valid count, then per valid cell
// fixed32 offset + fixed64 value, in increasing offset order.
// Dense: validity bitmap of ceil(capacity/8) bytes, then capacity fixed64
// values (invalid cells hold zero).
// LZW-wrapped (kLzwDense): tag byte 2 followed by the LZW stream of the
// dense serialization. Unwrapped by UnwrapChunkBlob before any view/parse.
constexpr uint8_t kDenseTag = 0;
constexpr uint8_t kSparseTag = 1;
constexpr uint8_t kLzwTag = 2;
}  // namespace

Status Chunk::Put(uint32_t offset, int64_t value) {
  if (offset >= capacity_) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " beyond chunk capacity " +
                              std::to_string(capacity_));
  }
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), offset,
      [](const ChunkEntry& e, uint32_t o) { return e.offset < o; });
  if (it != entries_.end() && it->offset == offset) {
    it->value = value;
  } else {
    entries_.insert(it, ChunkEntry{offset, value});
  }
  return Status::OK();
}

Status Chunk::AppendSorted(uint32_t offset, int64_t value) {
  if (offset >= capacity_) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " beyond chunk capacity " +
                              std::to_string(capacity_));
  }
  if (!entries_.empty() && entries_.back().offset >= offset) {
    return Status::InvalidArgument(
        "AppendSorted offsets must be strictly increasing");
  }
  entries_.push_back(ChunkEntry{offset, value});
  return Status::OK();
}

std::optional<int64_t> Chunk::Get(uint32_t offset) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), offset,
      [](const ChunkEntry& e, uint32_t o) { return e.offset < o; });
  if (it != entries_.end() && it->offset == offset) return it->value;
  return std::nullopt;
}

void Chunk::Erase(uint32_t offset) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), offset,
      [](const ChunkEntry& e, uint32_t o) { return e.offset < o; });
  if (it != entries_.end() && it->offset == offset) entries_.erase(it);
}

ChunkFormat Chunk::ResolveFormat(ChunkFormat format) const {
  if (format != ChunkFormat::kAuto) return format;
  return SparseBytes(num_valid()) <= DenseBytes(capacity_)
             ? ChunkFormat::kOffsetCompressed
             : ChunkFormat::kDense;
}

std::string Chunk::Serialize(ChunkFormat format) const {
  if (format == ChunkFormat::kLzwDense) {
    std::string out(1, static_cast<char>(kLzwTag));
    out.append(LzwCompress(Serialize(ChunkFormat::kDense)));
    return out;
  }
  const ChunkFormat resolved = ResolveFormat(format);
  std::string out;
  if (resolved == ChunkFormat::kOffsetCompressed) {
    out.resize(9 + entries_.size() * 12);
    out[0] = static_cast<char>(kSparseTag);
    EncodeFixed32(out.data() + 1, capacity_);
    EncodeFixed32(out.data() + 5, static_cast<uint32_t>(entries_.size()));
    char* p = out.data() + 9;
    for (const ChunkEntry& e : entries_) {
      EncodeFixed32(p, e.offset);
      EncodeFixed64(p + 4, static_cast<uint64_t>(e.value));
      p += 12;
    }
    return out;
  }
  const size_t bitmap_bytes = (capacity_ + 7) / 8;
  out.assign(5 + bitmap_bytes + static_cast<size_t>(capacity_) * 8, '\0');
  out[0] = static_cast<char>(kDenseTag);
  EncodeFixed32(out.data() + 1, capacity_);
  char* bitmap = out.data() + 5;
  char* values = out.data() + 5 + bitmap_bytes;
  for (const ChunkEntry& e : entries_) {
    bitmap[e.offset / 8] |= static_cast<char>(1u << (e.offset % 8));
    EncodeFixed64(values + static_cast<size_t>(e.offset) * 8,
                  static_cast<uint64_t>(e.value));
  }
  return out;
}

Result<std::string> UnwrapChunkBlob(std::string blob) {
  if (!blob.empty() && static_cast<uint8_t>(blob[0]) == kLzwTag) {
    return LzwDecompress({blob.data() + 1, blob.size() - 1});
  }
  return blob;
}

Result<Chunk> Chunk::Deserialize(std::string_view data) {
  if (!data.empty() && static_cast<uint8_t>(data[0]) == kLzwTag) {
    PARADISE_ASSIGN_OR_RETURN(std::string dense,
                              UnwrapChunkBlob(std::string(data)));
    return Deserialize(dense);
  }
  if (data.size() < 5) return Status::Corruption("chunk blob too small");
  const uint8_t tag = static_cast<uint8_t>(data[0]);
  const uint32_t capacity = DecodeFixed32(data.data() + 1);
  Chunk chunk(capacity);
  if (tag == kSparseTag) {
    if (data.size() < 9) return Status::Corruption("sparse chunk truncated");
    const uint32_t count = DecodeFixed32(data.data() + 5);
    if (data.size() != 9 + static_cast<size_t>(count) * 12) {
      return Status::Corruption("sparse chunk size mismatch");
    }
    chunk.entries_.reserve(count);
    const char* p = data.data() + 9;
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t offset = DecodeFixed32(p);
      const int64_t value = static_cast<int64_t>(DecodeFixed64(p + 4));
      p += 12;
      PARADISE_RETURN_IF_ERROR(chunk.AppendSorted(offset, value));
    }
    return chunk;
  }
  if (tag == kDenseTag) {
    const size_t bitmap_bytes = (static_cast<size_t>(capacity) + 7) / 8;
    if (data.size() != 5 + bitmap_bytes + static_cast<size_t>(capacity) * 8) {
      return Status::Corruption("dense chunk size mismatch");
    }
    const char* bitmap = data.data() + 5;
    const char* values = data.data() + 5 + bitmap_bytes;
    for (uint32_t off = 0; off < capacity; ++off) {
      if ((static_cast<uint8_t>(bitmap[off / 8]) >> (off % 8)) & 1) {
        PARADISE_RETURN_IF_ERROR(chunk.AppendSorted(
            off, static_cast<int64_t>(
                     DecodeFixed64(values + static_cast<size_t>(off) * 8))));
      }
    }
    return chunk;
  }
  return Status::Corruption("unknown chunk format tag " + std::to_string(tag));
}

Result<ChunkView> ChunkView::Make(std::string_view blob) {
  if (blob.size() < 5) return Status::Corruption("chunk blob too small");
  const uint8_t tag = static_cast<uint8_t>(blob[0]);
  const uint32_t capacity = DecodeFixed32(blob.data() + 1);
  if (tag == kSparseTag) {
    if (blob.size() < 9) return Status::Corruption("sparse chunk truncated");
    const uint32_t count = DecodeFixed32(blob.data() + 5);
    if (blob.size() != 9 + static_cast<size_t>(count) * 12) {
      return Status::Corruption("sparse chunk size mismatch");
    }
    return ChunkView(blob, /*sparse=*/true, capacity, count);
  }
  if (tag == kDenseTag) {
    const size_t bitmap_bytes = (static_cast<size_t>(capacity) + 7) / 8;
    if (blob.size() != 5 + bitmap_bytes + static_cast<size_t>(capacity) * 8) {
      return Status::Corruption("dense chunk size mismatch");
    }
    // Valid count is not stored in the dense format; count the bitmap.
    uint32_t valid = 0;
    for (size_t i = 0; i < bitmap_bytes; ++i) {
      valid += static_cast<uint32_t>(
          std::popcount(static_cast<unsigned char>(blob[5 + i])));
    }
    return ChunkView(blob, /*sparse=*/false, capacity, valid);
  }
  return Status::Corruption("unknown chunk format tag " + std::to_string(tag));
}

ChunkEntry ChunkView::SparseEntry(uint32_t i) const {
  const char* p = data_ + 9 + static_cast<size_t>(i) * 12;
  return ChunkEntry{DecodeFixed32(p),
                    static_cast<int64_t>(DecodeFixed64(p + 4))};
}

uint32_t ChunkView::SparseLowerBound(uint32_t offset, uint32_t from) const {
  uint32_t lo = from, hi = num_valid_;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (SparseEntry(mid).offset < offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool ChunkView::DenseValid(uint32_t offset) const {
  return (static_cast<uint8_t>(data_[5 + offset / 8]) >> (offset % 8)) & 1;
}

int64_t ChunkView::DenseValue(uint32_t offset) const {
  const size_t bitmap_bytes = (static_cast<size_t>(capacity_) + 7) / 8;
  return static_cast<int64_t>(DecodeFixed64(
      data_ + 5 + bitmap_bytes + static_cast<size_t>(offset) * 8));
}

std::optional<int64_t> ChunkView::Get(uint32_t offset) const {
  if (offset >= capacity_) return std::nullopt;
  if (sparse_) {
    const uint32_t pos = SparseLowerBound(offset, 0);
    if (pos < num_valid_ && SparseEntry(pos).offset == offset) {
      return SparseEntry(pos).value;
    }
    return std::nullopt;
  }
  if (!DenseValid(offset)) return std::nullopt;
  return DenseValue(offset);
}

}  // namespace paradise
