#include "array/chunk_layout.h"

#include <algorithm>
#include <sstream>

#include "common/coding.h"

namespace paradise {

Result<ChunkLayout> ChunkLayout::Make(std::vector<uint32_t> dims,
                                      std::vector<uint32_t> chunk_extents) {
  if (dims.empty()) {
    return Status::InvalidArgument("array must have at least one dimension");
  }
  if (dims.size() != chunk_extents.size()) {
    return Status::InvalidArgument("dims and chunk_extents length mismatch");
  }
  // Overflow-safe running product: saturates at UINT64_MAX instead of
  // wrapping, so e.g. three 2^22 extents (product 2^66) cannot slip past the
  // uint32 bound below by wrapping to a small number.
  auto checked_mul = [](uint64_t a, uint64_t b) {
    return (b != 0 && a > UINT64_MAX / b) ? UINT64_MAX : a * b;
  };
  uint64_t cells = 1;
  uint64_t chunk_cells = 1;
  for (size_t i = 0; i < dims.size(); ++i) {
    if (dims[i] == 0 || chunk_extents[i] == 0) {
      return Status::InvalidArgument(
          "dimension sizes and chunk extents must be positive");
    }
    cells = checked_mul(cells, dims[i]);
    chunk_cells = checked_mul(chunk_cells, chunk_extents[i]);
  }
  // Chunk cell counts must fit an offset in uint32 — CoordsToOffset and the
  // chunk-offset compression store per-chunk offsets as uint32.
  if (chunk_cells > UINT32_MAX) {
    return Status::InvalidArgument("chunk too large: offsets must fit uint32");
  }
  // Global cell indices are uint64; a wrapped total would alias cells.
  if (cells == UINT64_MAX) {
    return Status::InvalidArgument("array too large: cell count overflows");
  }
  return ChunkLayout(std::move(dims), std::move(chunk_extents));
}

ChunkLayout::ChunkLayout(std::vector<uint32_t> dims,
                         std::vector<uint32_t> chunk_extents)
    : dims_(std::move(dims)), chunk_extents_(std::move(chunk_extents)) {
  chunks_per_dim_.resize(dims_.size());
  total_cells_ = 1;
  num_chunks_ = 1;
  for (size_t i = 0; i < dims_.size(); ++i) {
    chunks_per_dim_[i] = (dims_[i] + chunk_extents_[i] - 1) / chunk_extents_[i];
    total_cells_ *= dims_[i];
    num_chunks_ *= chunks_per_dim_[i];
  }
}

uint64_t ChunkLayout::CoordsToGlobal(const CellCoords& c) const {
  uint64_t idx = 0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    idx = idx * dims_[i] + c[i];
  }
  return idx;
}

CellCoords ChunkLayout::GlobalToCoords(uint64_t global) const {
  CellCoords c(dims_.size());
  for (size_t i = dims_.size(); i > 0; --i) {
    c[i - 1] = static_cast<uint32_t>(global % dims_[i - 1]);
    global /= dims_[i - 1];
  }
  return c;
}

uint64_t ChunkLayout::CoordsToChunk(const CellCoords& c) const {
  uint64_t idx = 0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    idx = idx * chunks_per_dim_[i] + c[i] / chunk_extents_[i];
  }
  return idx;
}

uint32_t ChunkLayout::CoordsToOffset(const CellCoords& c) const {
  // Row-major within the chunk's actual dims (clipped at borders).
  uint32_t offset = 0;
  for (size_t i = 0; i < dims_.size(); ++i) {
    const uint32_t chunk_coord = c[i] / chunk_extents_[i];
    const uint32_t base = chunk_coord * chunk_extents_[i];
    const uint32_t side = std::min(chunk_extents_[i], dims_[i] - base);
    offset = offset * side + (c[i] - base);
  }
  return offset;
}

CellCoords ChunkLayout::ChunkToChunkCoords(uint64_t chunk) const {
  CellCoords c(dims_.size());
  for (size_t i = dims_.size(); i > 0; --i) {
    c[i - 1] = static_cast<uint32_t>(chunk % chunks_per_dim_[i - 1]);
    chunk /= chunks_per_dim_[i - 1];
  }
  return c;
}

CellCoords ChunkLayout::ChunkBase(uint64_t chunk) const {
  CellCoords c = ChunkToChunkCoords(chunk);
  for (size_t i = 0; i < c.size(); ++i) c[i] *= chunk_extents_[i];
  return c;
}

CellCoords ChunkLayout::ChunkDims(uint64_t chunk) const {
  CellCoords base = ChunkBase(chunk);
  CellCoords d(dims_.size());
  for (size_t i = 0; i < d.size(); ++i) {
    d[i] = std::min(chunk_extents_[i], dims_[i] - base[i]);
  }
  return d;
}

uint32_t ChunkLayout::ChunkCellCount(uint64_t chunk) const {
  uint32_t n = 1;
  for (uint32_t d : ChunkDims(chunk)) n *= d;
  return n;
}

CellCoords ChunkLayout::ChunkOffsetToCoords(uint64_t chunk,
                                            uint32_t offset) const {
  const CellCoords base = ChunkBase(chunk);
  const CellCoords cdims = ChunkDims(chunk);
  CellCoords c(dims_.size());
  for (size_t i = dims_.size(); i > 0; --i) {
    c[i - 1] = base[i - 1] + offset % cdims[i - 1];
    offset /= cdims[i - 1];
  }
  return c;
}

std::string ChunkLayout::ToString() const {
  std::ostringstream os;
  os << "array ";
  for (size_t i = 0; i < dims_.size(); ++i) {
    os << (i == 0 ? "" : "x") << dims_[i];
  }
  os << ", chunks ";
  for (size_t i = 0; i < chunk_extents_.size(); ++i) {
    os << (i == 0 ? "" : "x") << chunk_extents_[i];
  }
  os << " (" << num_chunks_ << " chunks)";
  return os.str();
}

std::string ChunkLayout::Serialize() const {
  std::string out;
  char scratch[4];
  EncodeFixed32(scratch, static_cast<uint32_t>(dims_.size()));
  out.append(scratch, 4);
  for (uint32_t d : dims_) {
    EncodeFixed32(scratch, d);
    out.append(scratch, 4);
  }
  for (uint32_t e : chunk_extents_) {
    EncodeFixed32(scratch, e);
    out.append(scratch, 4);
  }
  return out;
}

Result<ChunkLayout> ChunkLayout::Deserialize(std::string_view data,
                                             size_t* consumed) {
  if (data.size() < 4) return Status::Corruption("layout blob too small");
  const uint32_t n = DecodeFixed32(data.data());
  const size_t need = 4 + static_cast<size_t>(n) * 8;
  if (data.size() < need) return Status::Corruption("layout blob truncated");
  std::vector<uint32_t> dims(n), extents(n);
  for (uint32_t i = 0; i < n; ++i) {
    dims[i] = DecodeFixed32(data.data() + 4 + i * 4);
    extents[i] = DecodeFixed32(data.data() + 4 + (n + i) * 4);
  }
  if (consumed != nullptr) *consumed = need;
  return Make(std::move(dims), std::move(extents));
}

}  // namespace paradise
