#include "array/chunked_array.h"

#include <cstring>

#include "common/coding.h"

namespace paradise {

namespace {
// Meta object layout:
//   [0,4)   magic "CARR"
//   [4]     chunk format byte (ChunkFormat)
//   [5,9)   default chunk extent (ArrayOptions round-trip)
//   [9,17)  data ObjectId
//   then the serialized ChunkLayout
//   then the directory: per chunk, fixed64 byte offset + fixed64 byte
//   length + fixed32 valid count.
constexpr char kMagic[4] = {'C', 'A', 'R', 'R'};
constexpr size_t kDataOidOffset = 9;
constexpr size_t kLayoutOffset = 17;
constexpr size_t kDirEntryBytes = 20;
}  // namespace

Status ChunkedArray::Builder::Put(const CellCoords& coords, int64_t value) {
  if (coords.size() != layout_.num_dims()) {
    return Status::InvalidArgument("coordinate arity mismatch");
  }
  for (size_t i = 0; i < coords.size(); ++i) {
    if (coords[i] >= layout_.dims()[i]) {
      return Status::OutOfRange("coordinate " + std::to_string(coords[i]) +
                                " beyond dimension " + std::to_string(i));
    }
  }
  const uint64_t chunk_no = layout_.CoordsToChunk(coords);
  auto [it, inserted] =
      chunks_.try_emplace(chunk_no, layout_.ChunkCellCount(chunk_no));
  return it->second.Put(layout_.CoordsToOffset(coords), value);
}

Status ChunkedArray::Builder::PutGlobal(uint64_t global_index, int64_t value) {
  if (global_index >= layout_.total_cells()) {
    return Status::OutOfRange("global index beyond array");
  }
  return Put(layout_.GlobalToCoords(global_index), value);
}

Result<ChunkedArray> ChunkedArray::Builder::Finish() {
  PARADISE_RETURN_IF_ERROR(options_.Validate());
  std::vector<ChunkInfo> directory(layout_.num_chunks());
  // Pack chunks back-to-back in chunk-number order (std::map iterates keys
  // in order) so byte order matches logical order.
  std::string data;
  for (const auto& [chunk_no, chunk] : chunks_) {
    if (chunk.empty()) continue;
    const std::string blob = chunk.Serialize(options_.chunk_format);
    directory[chunk_no] =
        ChunkInfo{data.size(), blob.size(), chunk.num_valid()};
    data.append(blob);
  }
  PARADISE_ASSIGN_OR_RETURN(ObjectId data_oid,
                            storage_->objects()->Create(data));
  ChunkedArray array(storage_, kInvalidObjectId, data_oid, layout_, options_,
                     std::move(directory));
  PARADISE_ASSIGN_OR_RETURN(
      ObjectId meta, storage_->objects()->Create(array.SerializeMeta()));
  array.meta_oid_ = meta;
  return array;
}

std::string ChunkedArray::SerializeMeta() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(options_.chunk_format));
  char scratch[8];
  EncodeFixed32(scratch, options_.default_chunk_extent);
  out.append(scratch, 4);
  EncodeFixed64(scratch, data_oid_);
  out.append(scratch, 8);
  out.append(layout_.Serialize());
  for (const ChunkInfo& info : directory_) {
    EncodeFixed64(scratch, info.offset);
    out.append(scratch, 8);
    EncodeFixed64(scratch, info.bytes);
    out.append(scratch, 8);
    EncodeFixed32(scratch, info.num_valid);
    out.append(scratch, 4);
  }
  return out;
}

Result<ChunkedArray> ChunkedArray::Open(StorageManager* storage,
                                        ObjectId meta) {
  PARADISE_ASSIGN_OR_RETURN(std::string blob, storage->objects()->Read(meta));
  if (blob.size() < kLayoutOffset ||
      std::memcmp(blob.data(), kMagic, 4) != 0) {
    return Status::Corruption("object " + std::to_string(meta) +
                              " is not a chunked array");
  }
  ArrayOptions options;
  options.chunk_format = static_cast<ChunkFormat>(blob[4]);
  options.default_chunk_extent = DecodeFixed32(blob.data() + 5);
  const ObjectId data_oid = DecodeFixed64(blob.data() + kDataOidOffset);
  size_t consumed = 0;
  PARADISE_ASSIGN_OR_RETURN(
      ChunkLayout layout,
      ChunkLayout::Deserialize(
          {blob.data() + kLayoutOffset, blob.size() - kLayoutOffset},
          &consumed));
  const size_t dir_start = kLayoutOffset + consumed;
  const uint64_t num_chunks = layout.num_chunks();
  if (blob.size() != dir_start + num_chunks * kDirEntryBytes) {
    return Status::Corruption("chunked-array directory size mismatch");
  }
  std::vector<ChunkInfo> directory(num_chunks);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    const char* p = blob.data() + dir_start + c * kDirEntryBytes;
    directory[c].offset = DecodeFixed64(p);
    directory[c].bytes = DecodeFixed64(p + 8);
    directory[c].num_valid = DecodeFixed32(p + 16);
  }
  return ChunkedArray(storage, meta, data_oid, std::move(layout), options,
                      std::move(directory));
}

Result<std::string> ChunkedArray::ReadChunkBlob(uint64_t chunk_no) const {
  if (chunk_no >= layout_.num_chunks()) {
    return Status::OutOfRange("chunk " + std::to_string(chunk_no) +
                              " beyond " +
                              std::to_string(layout_.num_chunks()));
  }
  const ChunkInfo& info = directory_[chunk_no];
  if (info.num_valid == 0) return std::string();
  PARADISE_ASSIGN_OR_RETURN(
      std::string blob,
      storage_->objects()->ReadRange(data_oid_, info.offset, info.bytes));
  // LZW-wrapped chunks decompress here so every caller sees dense/sparse.
  return UnwrapChunkBlob(std::move(blob));
}

Result<Chunk> ChunkedArray::ReadChunk(uint64_t chunk_no) const {
  PARADISE_ASSIGN_OR_RETURN(std::string blob, ReadChunkBlob(chunk_no));
  if (blob.empty()) return Chunk(layout_.ChunkCellCount(chunk_no));
  return Chunk::Deserialize(blob);
}

Result<std::optional<int64_t>> ChunkedArray::GetCell(
    const CellCoords& coords) const {
  const uint64_t chunk_no = layout_.CoordsToChunk(coords);
  if (ChunkIsEmpty(chunk_no)) return std::optional<int64_t>{};
  PARADISE_ASSIGN_OR_RETURN(std::string blob, ReadChunkBlob(chunk_no));
  PARADISE_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Make(blob));
  return view.Get(layout_.CoordsToOffset(coords));
}

Status ChunkedArray::RewriteChunk(uint64_t chunk_no, const std::string& blob,
                                  uint32_t new_valid) {
  PARADISE_ASSIGN_OR_RETURN(std::string old_data,
                            storage_->objects()->Read(data_oid_));
  std::string new_data;
  new_data.reserve(old_data.size() + blob.size());
  for (uint64_t c = 0; c < directory_.size(); ++c) {
    ChunkInfo& info = directory_[c];
    if (c == chunk_no) {
      info = ChunkInfo{new_data.size(), blob.size(), new_valid};
      new_data.append(blob);
      continue;
    }
    if (info.num_valid == 0) continue;
    const uint64_t offset = new_data.size();
    new_data.append(old_data, info.offset, info.bytes);
    info.offset = offset;
  }
  return storage_->objects()->Overwrite(data_oid_, new_data);
}

Status ChunkedArray::PutCell(const CellCoords& coords, int64_t value) {
  const uint64_t chunk_no = layout_.CoordsToChunk(coords);
  PARADISE_ASSIGN_OR_RETURN(Chunk chunk, ReadChunk(chunk_no));
  PARADISE_RETURN_IF_ERROR(chunk.Put(layout_.CoordsToOffset(coords), value));
  return RewriteChunk(chunk_no, chunk.Serialize(options_.chunk_format),
                      chunk.num_valid());
}

Status ChunkedArray::EraseCell(const CellCoords& coords) {
  const uint64_t chunk_no = layout_.CoordsToChunk(coords);
  if (ChunkIsEmpty(chunk_no)) return Status::OK();
  PARADISE_ASSIGN_OR_RETURN(Chunk chunk, ReadChunk(chunk_no));
  chunk.Erase(layout_.CoordsToOffset(coords));
  if (chunk.empty()) return RewriteChunk(chunk_no, std::string(), 0);
  return RewriteChunk(chunk_no, chunk.Serialize(options_.chunk_format),
                      chunk.num_valid());
}

uint64_t ChunkedArray::num_valid_cells() const {
  uint64_t n = 0;
  for (const ChunkInfo& info : directory_) n += info.num_valid;
  return n;
}

uint64_t ChunkedArray::TotalDataBytes() const {
  uint64_t n = 0;
  for (const ChunkInfo& info : directory_) {
    if (info.num_valid > 0) n += info.bytes;
  }
  return n;
}

Result<uint64_t> ChunkedArray::TotalPages() const {
  PARADISE_ASSIGN_OR_RETURN(uint64_t meta_pages,
                            storage_->objects()->PageFootprint(meta_oid_));
  PARADISE_ASSIGN_OR_RETURN(uint64_t data_pages,
                            storage_->objects()->PageFootprint(data_oid_));
  return meta_pages + data_pages;
}

Status ChunkedArray::Sync() {
  return storage_->objects()->Overwrite(meta_oid_, SerializeMeta());
}

}  // namespace paradise
