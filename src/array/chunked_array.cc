#include "array/chunked_array.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "common/coding.h"
#include "storage/io_pool.h"
#include "storage/page.h"

namespace paradise {

namespace {
// Meta object layout:
//   [0,4)   magic "CARR"
//   [4]     chunk format byte (ChunkFormat)
//   [5,9)   default chunk extent (ArrayOptions round-trip)
//   [9,17)  data ObjectId
//   then the serialized ChunkLayout
//   then the directory: per chunk, fixed64 byte offset + fixed64 byte
//   length + fixed32 valid count.
constexpr char kMagic[4] = {'C', 'A', 'R', 'R'};
constexpr size_t kDataOidOffset = 9;
constexpr size_t kLayoutOffset = 17;
constexpr size_t kDirEntryBytes = 20;

bool StoragePermitsPackedCodecs(const StorageManager* storage) {
  return storage != nullptr && storage->disk() != nullptr &&
         storage->disk()->format_version() >= page_header::kFormatCodecs;
}

bool IsPackedFormat(ChunkFormat format) {
  return format == ChunkFormat::kDiffSequence ||
         format == ChunkFormat::kBitPacked;
}
}  // namespace

ChunkedArray::ChunkedArray(StorageManager* storage, ObjectId meta,
                           ObjectId data, ChunkLayout layout,
                           ArrayOptions options,
                           std::vector<ChunkInfo> directory)
    : storage_(storage),
      layout_(std::move(layout)),
      options_(options),
      allow_packed_(StoragePermitsPackedCodecs(storage)) {
  auto v = std::make_shared<Version>();
  v->meta_oid = meta;
  v->data_oid = data;
  v->directory = std::move(directory);
  v->base_ref = std::make_shared<int>(0);
  version_ = std::move(v);
}

ChunkedArray::ChunkedArray(const ChunkedArray& o)
    : storage_(o.storage_),
      layout_(o.layout_),
      options_(o.options_),
      allow_packed_(o.allow_packed_),
      version_(o.version()) {}

ChunkedArray& ChunkedArray::operator=(const ChunkedArray& o) {
  if (this == &o) return *this;
  VersionPtr v = o.version();
  storage_ = o.storage_;
  layout_ = o.layout_;
  options_ = o.options_;
  allow_packed_ = o.allow_packed_;
  StoreVersion(std::move(v));
  return *this;
}

ChunkedArray::ChunkedArray(ChunkedArray&& o) noexcept
    : storage_(o.storage_),
      layout_(std::move(o.layout_)),
      options_(o.options_),
      allow_packed_(o.allow_packed_),
      version_(o.version()) {}

ChunkedArray& ChunkedArray::operator=(ChunkedArray&& o) noexcept {
  if (this == &o) return *this;
  VersionPtr v = o.version();
  storage_ = o.storage_;
  layout_ = std::move(o.layout_);
  options_ = o.options_;
  allow_packed_ = o.allow_packed_;
  StoreVersion(std::move(v));
  return *this;
}

ObjectId ChunkedArray::meta_oid() const { return version()->meta_oid; }

Status ChunkedArray::Builder::Put(const CellCoords& coords, int64_t value) {
  if (coords.size() != layout_.num_dims()) {
    return Status::InvalidArgument("coordinate arity mismatch");
  }
  for (size_t i = 0; i < coords.size(); ++i) {
    if (coords[i] >= layout_.dims()[i]) {
      return Status::OutOfRange("coordinate " + std::to_string(coords[i]) +
                                " beyond dimension " + std::to_string(i));
    }
  }
  const uint64_t chunk_no = layout_.CoordsToChunk(coords);
  auto [it, inserted] =
      chunks_.try_emplace(chunk_no, layout_.ChunkCellCount(chunk_no));
  return it->second.Put(layout_.CoordsToOffset(coords), value);
}

Status ChunkedArray::Builder::PutGlobal(uint64_t global_index, int64_t value) {
  if (global_index >= layout_.total_cells()) {
    return Status::OutOfRange("global index beyond array");
  }
  return Put(layout_.GlobalToCoords(global_index), value);
}

Result<ChunkedArray> ChunkedArray::Builder::Finish() {
  PARADISE_RETURN_IF_ERROR(options_.Validate());
  const bool allow_packed = StoragePermitsPackedCodecs(storage_);
  // Test/CI hook: PARADISE_FORCE_CHUNK_FORMAT overrides the configured
  // format so the whole suite can run once per codec (the codec-matrix CI
  // job). A forced packed format is dropped on a pre-v5 file rather than
  // failing: the compat suites deliberately write old-format files, and
  // those must keep meaning "legacy codecs" under any forced matrix value.
  if (std::optional<ChunkFormat> forced = ForcedChunkFormatFromEnv()) {
    if (allow_packed || !IsPackedFormat(*forced)) {
      options_.chunk_format = *forced;
    }
  }
  if (!allow_packed && IsPackedFormat(options_.chunk_format)) {
    return Status::NotSupported(
        std::string(ChunkFormatToString(options_.chunk_format)) +
        " chunks require storage format v" +
        std::to_string(page_header::kFormatCodecs) + ", file is v" +
        std::to_string(storage_->disk()->format_version()));
  }
  std::vector<ChunkInfo> directory(layout_.num_chunks());
  // Pack chunks back-to-back in chunk-number order (std::map iterates keys
  // in order) so byte order matches logical order.
  std::string data;
  for (const auto& [chunk_no, chunk] : chunks_) {
    if (chunk.empty()) continue;
    const std::string blob =
        chunk.Serialize(options_.chunk_format, allow_packed);
    directory[chunk_no] =
        ChunkInfo{data.size(), blob.size(), chunk.num_valid()};
    data.append(blob);
  }
  PARADISE_ASSIGN_OR_RETURN(ObjectId data_oid,
                            storage_->objects()->Create(data));
  Version v;
  v.data_oid = data_oid;
  v.directory = std::move(directory);
  PARADISE_ASSIGN_OR_RETURN(
      ObjectId meta,
      storage_->objects()->Create(SerializeMeta(v, layout_, options_)));
  return ChunkedArray(storage_, meta, data_oid, layout_, options_,
                      std::move(v.directory));
}

std::string ChunkedArray::SerializeMeta(const Version& v,
                                        const ChunkLayout& layout,
                                        const ArrayOptions& options) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(options.chunk_format));
  char scratch[8];
  EncodeFixed32(scratch, options.default_chunk_extent);
  out.append(scratch, 4);
  EncodeFixed64(scratch, v.data_oid);
  out.append(scratch, 8);
  out.append(layout.Serialize());
  for (const ChunkInfo& info : v.directory) {
    EncodeFixed64(scratch, info.offset);
    out.append(scratch, 8);
    EncodeFixed64(scratch, info.bytes);
    out.append(scratch, 8);
    EncodeFixed32(scratch, info.num_valid);
    out.append(scratch, 4);
  }
  return out;
}

Result<ChunkedArray> ChunkedArray::Open(StorageManager* storage,
                                        ObjectId meta) {
  PARADISE_ASSIGN_OR_RETURN(std::string blob, storage->objects()->Read(meta));
  if (blob.size() < kLayoutOffset ||
      std::memcmp(blob.data(), kMagic, 4) != 0) {
    return Status::Corruption("object " + std::to_string(meta) +
                              " is not a chunked array");
  }
  // A chunk-format byte this build does not know means the file was written
  // by a newer build (or the byte is corrupt); either way decoding the data
  // object would misread it, so reject with a typed error instead of
  // casting blindly.
  const uint8_t format_byte = static_cast<uint8_t>(blob[4]);
  if (format_byte > kMaxChunkFormat) {
    return Status::NotSupported(
        "chunked array " + std::to_string(meta) + " uses chunk format " +
        std::to_string(format_byte) + " but this build supports at most " +
        std::to_string(kMaxChunkFormat));
  }
  // A packed chunk format inside a pre-v5 file is a contradiction — no
  // writer of this lineage produces it — so treat it as the same class of
  // typed rejection rather than decoding data the file's version disclaims.
  if (IsPackedFormat(static_cast<ChunkFormat>(format_byte)) &&
      !StoragePermitsPackedCodecs(storage)) {
    return Status::NotSupported(
        "chunked array " + std::to_string(meta) + " uses chunk format " +
        std::string(
            ChunkFormatToString(static_cast<ChunkFormat>(format_byte))) +
        " but the file predates storage format v" +
        std::to_string(page_header::kFormatCodecs));
  }
  ArrayOptions options;
  options.chunk_format = static_cast<ChunkFormat>(format_byte);
  options.default_chunk_extent = DecodeFixed32(blob.data() + 5);
  const ObjectId data_oid = DecodeFixed64(blob.data() + kDataOidOffset);
  size_t consumed = 0;
  PARADISE_ASSIGN_OR_RETURN(
      ChunkLayout layout,
      ChunkLayout::Deserialize(
          {blob.data() + kLayoutOffset, blob.size() - kLayoutOffset},
          &consumed));
  const size_t dir_start = kLayoutOffset + consumed;
  const uint64_t num_chunks = layout.num_chunks();
  if (blob.size() != dir_start + num_chunks * kDirEntryBytes) {
    return Status::Corruption("chunked-array directory size mismatch");
  }
  std::vector<ChunkInfo> directory(num_chunks);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    const char* p = blob.data() + dir_start + c * kDirEntryBytes;
    directory[c].offset = DecodeFixed64(p);
    directory[c].bytes = DecodeFixed64(p + 8);
    directory[c].num_valid = DecodeFixed32(p + 16);
  }
  return ChunkedArray(storage, meta, data_oid, std::move(layout), options,
                      std::move(directory));
}

Result<std::string> ChunkedArray::ReadBaseChunkBlobAt(
    const Version& v, uint64_t chunk_no) const {
  const ChunkInfo& info = v.directory[chunk_no];
  if (info.num_valid == 0) return std::string();
  PARADISE_ASSIGN_OR_RETURN(
      std::string blob,
      storage_->objects()->ReadRange(v.data_oid, info.offset, info.bytes));
  // LZW-wrapped chunks decompress here so every caller sees dense/sparse.
  return UnwrapChunkBlob(std::move(blob));
}

Result<std::string> ChunkedArray::ReadChunkBlobAt(const Version& v,
                                                  uint64_t chunk_no) const {
  const ChunkDelta* delta =
      v.overlay == nullptr ? nullptr : v.overlay->Find(chunk_no);
  PARADISE_ASSIGN_OR_RETURN(std::string base,
                            ReadBaseChunkBlobAt(v, chunk_no));
  if (delta == nullptr) return base;
  // Merge through the array's configured format and unwrap again: the bytes
  // handed out are exactly what a from-scratch load of the merged cells
  // would produce.
  uint32_t merged_valid = 0;
  PARADISE_ASSIGN_OR_RETURN(
      std::string merged,
      MergeChunkBlob(base, *delta, layout_.ChunkCellCount(chunk_no),
                     options_.chunk_format, &merged_valid, allow_packed_));
  return UnwrapChunkBlob(std::move(merged));
}

Result<Chunk> ChunkedArray::ReadChunkAt(const Version& v,
                                        uint64_t chunk_no) const {
  PARADISE_ASSIGN_OR_RETURN(std::string blob, ReadChunkBlobAt(v, chunk_no));
  if (blob.empty()) return Chunk(layout_.ChunkCellCount(chunk_no));
  return Chunk::Deserialize(blob);
}

Result<std::string> ChunkedArray::ReadChunkBlob(uint64_t chunk_no) const {
  if (chunk_no >= layout_.num_chunks()) {
    return Status::OutOfRange("chunk " + std::to_string(chunk_no) +
                              " beyond " +
                              std::to_string(layout_.num_chunks()));
  }
  return ReadChunkBlobAt(*version(), chunk_no);
}

Result<Chunk> ChunkedArray::ReadChunk(uint64_t chunk_no) const {
  if (chunk_no >= layout_.num_chunks()) {
    return Status::OutOfRange("chunk " + std::to_string(chunk_no) +
                              " beyond " +
                              std::to_string(layout_.num_chunks()));
  }
  return ReadChunkAt(*version(), chunk_no);
}

bool ChunkedArray::ChunkIsEmpty(uint64_t chunk_no) const {
  if (chunk_no >= layout_.num_chunks()) return true;
  return ChunkIsEmptyAt(*version(), chunk_no);
}

uint32_t ChunkedArray::ChunkValidCount(uint64_t chunk_no) const {
  if (chunk_no >= layout_.num_chunks()) return 0;
  const VersionPtr v = version();
  uint32_t n = v->directory[chunk_no].num_valid;
  if (v->overlay != nullptr) {
    const ChunkDelta* delta = v->overlay->Find(chunk_no);
    if (delta != nullptr) n += static_cast<uint32_t>(delta->cells.size());
  }
  return n;
}

Result<std::optional<int64_t>> ChunkedArray::GetCell(
    const CellCoords& coords) const {
  const VersionPtr v = version();
  const uint64_t chunk_no = layout_.CoordsToChunk(coords);
  const uint32_t offset = layout_.CoordsToOffset(coords);
  // Overlay deltas are upserts, so a delta hit answers without touching the
  // base chunk at all.
  if (v->overlay != nullptr) {
    const ChunkDelta* delta = v->overlay->Find(chunk_no);
    if (delta != nullptr) {
      auto it = std::lower_bound(
          delta->cells.begin(), delta->cells.end(), offset,
          [](const ChunkEntry& e, uint32_t o) { return e.offset < o; });
      if (it != delta->cells.end() && it->offset == offset) {
        return std::optional<int64_t>{it->value};
      }
    }
  }
  PARADISE_ASSIGN_OR_RETURN(std::string blob,
                            ReadBaseChunkBlobAt(*v, chunk_no));
  if (blob.empty()) return std::optional<int64_t>{};
  PARADISE_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Make(blob));
  return view.Get(offset);
}

Status ChunkedArray::RewriteChunk(uint64_t chunk_no, const std::string& blob,
                                  uint32_t new_valid) {
  const VersionPtr v = version();
  PARADISE_ASSIGN_OR_RETURN(std::string old_data,
                            storage_->objects()->Read(v->data_oid));
  auto nv = std::make_shared<Version>(*v);
  std::string new_data;
  new_data.reserve(old_data.size() + blob.size());
  for (uint64_t c = 0; c < nv->directory.size(); ++c) {
    ChunkInfo& info = nv->directory[c];
    if (c == chunk_no) {
      info = ChunkInfo{new_data.size(), blob.size(), new_valid};
      new_data.append(blob);
      continue;
    }
    if (info.num_valid == 0) continue;
    const uint64_t offset = new_data.size();
    new_data.append(old_data, info.offset, info.bytes);
    info.offset = offset;
  }
  PARADISE_RETURN_IF_ERROR(
      storage_->objects()->Overwrite(v->data_oid, new_data));
  StoreVersion(std::move(nv));
  return Status::OK();
}

Status ChunkedArray::PutCell(const CellCoords& coords, int64_t value) {
  const VersionPtr v = version();
  const uint64_t chunk_no = layout_.CoordsToChunk(coords);
  // Point updates edit the BASE chunk (never the overlay — mixing the two
  // write paths would fold overlay cells into the base silently).
  PARADISE_ASSIGN_OR_RETURN(std::string blob,
                            ReadBaseChunkBlobAt(*v, chunk_no));
  Chunk chunk(layout_.ChunkCellCount(chunk_no));
  if (!blob.empty()) {
    PARADISE_ASSIGN_OR_RETURN(chunk, Chunk::Deserialize(blob));
  }
  PARADISE_RETURN_IF_ERROR(chunk.Put(layout_.CoordsToOffset(coords), value));
  return RewriteChunk(
      chunk_no, chunk.Serialize(options_.chunk_format, allow_packed_),
      chunk.num_valid());
}

Status ChunkedArray::EraseCell(const CellCoords& coords) {
  const VersionPtr v = version();
  const uint64_t chunk_no = layout_.CoordsToChunk(coords);
  if (v->directory[chunk_no].num_valid == 0) return Status::OK();
  PARADISE_ASSIGN_OR_RETURN(std::string blob,
                            ReadBaseChunkBlobAt(*v, chunk_no));
  Chunk chunk(layout_.ChunkCellCount(chunk_no));
  if (!blob.empty()) {
    PARADISE_ASSIGN_OR_RETURN(chunk, Chunk::Deserialize(blob));
  }
  chunk.Erase(layout_.CoordsToOffset(coords));
  if (chunk.empty()) return RewriteChunk(chunk_no, std::string(), 0);
  return RewriteChunk(
      chunk_no, chunk.Serialize(options_.chunk_format, allow_packed_),
      chunk.num_valid());
}

uint64_t ChunkedArray::num_valid_cells() const {
  const VersionPtr v = version();
  uint64_t n = 0;
  for (const ChunkInfo& info : v->directory) n += info.num_valid;
  return n;
}

uint64_t ChunkedArray::TotalDataBytes() const {
  const VersionPtr v = version();
  uint64_t n = 0;
  for (const ChunkInfo& info : v->directory) {
    if (info.num_valid > 0) n += info.bytes;
  }
  return n;
}

Result<uint64_t> ChunkedArray::TotalPages() const {
  const VersionPtr v = version();
  PARADISE_ASSIGN_OR_RETURN(uint64_t meta_pages,
                            storage_->objects()->PageFootprint(v->meta_oid));
  PARADISE_ASSIGN_OR_RETURN(uint64_t data_pages,
                            storage_->objects()->PageFootprint(v->data_oid));
  return meta_pages + data_pages;
}

Status ChunkedArray::Sync() {
  const VersionPtr v = version();
  return storage_->objects()->Overwrite(v->meta_oid,
                                        SerializeMeta(*v, layout_, options_));
}

void ChunkedArray::PublishOverlay(
    std::shared_ptr<const DeltaOverlay> overlay) {
  const VersionPtr v = version();
  auto nv = std::make_shared<Version>(*v);
  nv->overlay = std::move(overlay);
  StoreVersion(std::move(nv));
}

Result<ChunkedArray::Compaction> ChunkedArray::PrepareCompaction(
    const DeltaOverlay& overlay, IoPool* io_pool,
    const CancellationToken* cancel) {
  const VersionPtr v = version();
  const uint64_t num_chunks = layout_.num_chunks();
  for (const auto& [chunk_no, delta] : overlay.chunks()) {
    if (chunk_no >= num_chunks) {
      return Status::Corruption("delta targets chunk " +
                                std::to_string(chunk_no) + " beyond " +
                                std::to_string(num_chunks));
    }
  }
  if (cancel != nullptr) PARADISE_RETURN_IF_ERROR(cancel->Check());
  // One sequential read of the packed object; untouched chunks are copied
  // from this buffer byte-identically, delta chunks merge against it.
  PARADISE_ASSIGN_OR_RETURN(std::string old_data,
                            storage_->objects()->Read(v->data_oid));

  struct MergeSlot {
    std::string blob;
    uint32_t valid = 0;
    Status status;
    bool done = false;
  };
  std::vector<MergeSlot> merged(num_chunks);
  std::atomic<bool> abort{false};
  auto merge_one = [&](uint64_t c, const ChunkDelta* delta) {
    if (abort.load(std::memory_order_relaxed)) return;
    if (cancel != nullptr && cancel->ShouldStop()) {
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    MergeSlot& slot = merged[c];
    std::string base;
    const ChunkInfo& info = v->directory[c];
    if (info.num_valid > 0) {
      Result<std::string> base_or =
          UnwrapChunkBlob(old_data.substr(info.offset, info.bytes));
      if (!base_or.ok()) {
        slot.status = base_or.status();
        abort.store(true, std::memory_order_relaxed);
        return;
      }
      base = std::move(base_or).value();
    }
    Result<std::string> blob_or =
        MergeChunkBlob(base, *delta, layout_.ChunkCellCount(c),
                       options_.chunk_format, &slot.valid, allow_packed_);
    if (!blob_or.ok()) {
      slot.status = blob_or.status();
      abort.store(true, std::memory_order_relaxed);
      return;
    }
    slot.blob = std::move(blob_or).value();
    slot.done = true;
  };
  // The merge work (decode + upsert + re-encode, LZW included) is the CPU
  // cost of compaction; fan it across the IoPool and Drain as the barrier.
  // A refused Submit (pool shutting down) just runs the merge inline.
  if (io_pool != nullptr) {
    for (const auto& [chunk_no, delta] : overlay.chunks()) {
      const uint64_t c = chunk_no;
      const ChunkDelta* d = &delta;
      if (!io_pool->Submit([&merge_one, c, d] { merge_one(c, d); })) {
        merge_one(c, d);
      }
    }
    io_pool->Drain();
  } else {
    for (const auto& [chunk_no, delta] : overlay.chunks()) {
      merge_one(chunk_no, &delta);
    }
  }
  if (cancel != nullptr) PARADISE_RETURN_IF_ERROR(cancel->Check());
  for (const auto& [chunk_no, delta] : overlay.chunks()) {
    if (!merged[chunk_no].status.ok()) return merged[chunk_no].status;
    if (!merged[chunk_no].done) {
      return Status::Internal("chunk merge did not run");
    }
  }

  // Assemble the replacement packed object + directory. Nothing has been
  // allocated yet, so every earlier failure path leaves storage untouched.
  auto nv = std::make_shared<Version>();
  nv->directory.resize(num_chunks);
  nv->base_ref = std::make_shared<int>(0);  // fresh storage generation
  std::string data;
  uint64_t merged_chunks = 0;
  uint64_t merged_cells = 0;
  for (uint64_t c = 0; c < num_chunks; ++c) {
    if (overlay.Find(c) != nullptr) {
      MergeSlot& slot = merged[c];
      if (slot.valid == 0) continue;
      nv->directory[c] = ChunkInfo{data.size(), slot.blob.size(), slot.valid};
      data.append(slot.blob);
      ++merged_chunks;
      merged_cells += slot.valid;
      continue;
    }
    const ChunkInfo& info = v->directory[c];
    if (info.num_valid == 0) continue;
    nv->directory[c] = ChunkInfo{data.size(), info.bytes, info.num_valid};
    data.append(old_data, info.offset, info.bytes);
  }
  PARADISE_ASSIGN_OR_RETURN(ObjectId new_data,
                            storage_->objects()->Create(data));
  nv->data_oid = new_data;
  Result<ObjectId> meta_or =
      storage_->objects()->Create(SerializeMeta(*nv, layout_, options_));
  if (!meta_or.ok()) {
    (void)storage_->objects()->Free(new_data);
    return meta_or.status();
  }
  nv->meta_oid = meta_or.value();

  Compaction out;
  out.old_data_oid = v->data_oid;
  out.old_meta_oid = v->meta_oid;
  out.new_data_oid = nv->data_oid;
  out.new_meta_oid = nv->meta_oid;
  out.merged_chunks = merged_chunks;
  out.merged_cells = merged_cells;
  out.pending = nv;
  out.replaced = v->base_ref;
  return out;
}

void ChunkedArray::PublishCompaction(const Compaction& c) {
  StoreVersion(std::static_pointer_cast<const Version>(c.pending));
}

}  // namespace paradise
