// Little-endian bit-stream primitives for the packed chunk codecs
// (array/chunk.cc): fixed-width fields of 0..64 bits written back-to-back
// into a byte buffer, addressed by absolute bit position so readers can
// jump straight to field i at bit i*width — the random access the §4.2
// probe loop needs, which is why the codecs use fixed-width packing instead
// of a stream coder.
//
// Bit order: field bits fill bytes from the least-significant bit upward,
// so a field never depends on any byte past ceil((bit_pos + nbits) / 8) and
// a stream of n fields of w bits occupies exactly ceil(n*w / 8) bytes —
// the size formulas in Chunk::SerializedBytes rely on this.
#pragma once

#include <cstddef>
#include <cstdint>

namespace paradise {

/// All-ones mask of the low `nbits` bits (nbits <= 64).
inline constexpr uint64_t BitMask(unsigned nbits) {
  return nbits >= 64 ? ~uint64_t{0} : (uint64_t{1} << nbits) - 1;
}

/// Smallest width that can hold `v` (0 for v == 0).
inline constexpr unsigned BitWidth(uint64_t v) {
  unsigned w = 0;
  while (v != 0) {
    ++w;
    v >>= 1;
  }
  return w;
}

/// ORs the low `nbits` of `v` into `base` at bit `bit_pos`. The buffer must
/// be pre-zeroed (fields are only ever written once) and large enough for
/// the full field.
inline void WriteBits(char* base, uint64_t bit_pos, unsigned nbits,
                      uint64_t v) {
  if (nbits == 0) return;
  size_t byte = static_cast<size_t>(bit_pos >> 3);
  const unsigned shift = static_cast<unsigned>(bit_pos & 7);
  // At most 64 + 7 = 71 significant bits; a 128-bit shift register keeps
  // the byte loop branch-free.
  unsigned __int128 wide =
      static_cast<unsigned __int128>(v & BitMask(nbits)) << shift;
  const unsigned total = shift + nbits;
  for (unsigned consumed = 0; consumed < total; consumed += 8, ++byte) {
    base[byte] = static_cast<char>(static_cast<uint8_t>(base[byte]) |
                                   static_cast<uint8_t>(wide & 0xff));
    wide >>= 8;
  }
}

/// Reads an `nbits`-wide field from `base` at bit `bit_pos`. Touches only
/// the bytes the field occupies, so reading the final field of a stream
/// never runs past the stream's ceil(total_bits / 8) bytes.
inline uint64_t ReadBits(const char* base, uint64_t bit_pos, unsigned nbits) {
  if (nbits == 0) return 0;
  const size_t byte = static_cast<size_t>(bit_pos >> 3);
  const unsigned shift = static_cast<unsigned>(bit_pos & 7);
  const unsigned nbytes = (shift + nbits + 7) / 8;
  unsigned __int128 wide = 0;
  for (unsigned i = 0; i < nbytes; ++i) {
    wide |= static_cast<unsigned __int128>(static_cast<uint8_t>(base[byte + i]))
            << (8 * i);
  }
  return static_cast<uint64_t>(wide >> shift) & BitMask(nbits);
}

}  // namespace paradise
