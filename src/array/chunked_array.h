// ChunkedArray: a persistent tiled n-dimensional array of int64 cells.
// All chunk blobs are packed back-to-back, in chunk-number order, inside ONE
// large object (the "data file"); a directory of per-chunk byte offsets and
// lengths lives in the array's meta object — exactly the paper's layout:
// "we use some meta data to hold the OID and the length of each chunk and
// store the meta data at the beginning of the data file" (§3.3). Packing
// means a full-array scan reads only ceil(data/page_size) pages, which is
// what makes the compressed array's scan cheaper than the fact file's.
//
// The array is optimized for bulk load + read (the paper's workload); point
// updates (PutCell/EraseCell) rewrite the packed data object and are O(array
// size).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "array/chunk.h"
#include "array/chunk_layout.h"
#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/storage_manager.h"

namespace paradise {

class ChunkedArray {
 public:
  /// Accumulates cells in memory grouped by chunk, then packs every
  /// non-empty chunk in chunk-number order into the data object (so chunk
  /// order matches byte/physical order, as §4.2's optimizations assume) and
  /// writes the meta object.
  class Builder {
   public:
    Builder(StorageManager* storage, ChunkLayout layout, ArrayOptions options)
        : storage_(storage),
          layout_(std::move(layout)),
          options_(options) {}

    /// Sets the cell at `coords` (last write wins).
    Status Put(const CellCoords& coords, int64_t value);

    /// Sets the cell at a row-major global index.
    Status PutGlobal(uint64_t global_index, int64_t value);

    /// Writes data + meta and opens the resulting array.
    Result<ChunkedArray> Finish();

   private:
    StorageManager* storage_;
    ChunkLayout layout_;
    ArrayOptions options_;
    std::map<uint64_t, Chunk> chunks_;
  };

  ChunkedArray() = default;

  /// Opens an array from its meta object id.
  static Result<ChunkedArray> Open(StorageManager* storage, ObjectId meta);

  const ChunkLayout& layout() const { return layout_; }
  const ArrayOptions& options() const { return options_; }
  ObjectId meta_oid() const { return meta_oid_; }

  /// Value of one cell, or nullopt if invalid. Reads only the pages of the
  /// containing chunk.
  Result<std::optional<int64_t>> GetCell(const CellCoords& coords) const;

  /// Writes one cell. Rewrites the packed data object; call Sync() after a
  /// batch of updates to persist the directory.
  Status PutCell(const CellCoords& coords, int64_t value);

  /// Marks one cell invalid.
  Status EraseCell(const CellCoords& coords);

  /// Reads one chunk's raw serialized bytes (empty string for an empty
  /// chunk). Pair with ChunkView for zero-copy probing.
  Result<std::string> ReadChunkBlob(uint64_t chunk_no) const;

  /// Reads and materializes one chunk.
  Result<Chunk> ReadChunk(uint64_t chunk_no) const;

  /// True if the chunk has no valid cells (directory lookup only).
  bool ChunkIsEmpty(uint64_t chunk_no) const {
    return directory_[chunk_no].num_valid == 0;
  }

  /// Valid-cell count of a chunk without reading it.
  uint32_t ChunkValidCount(uint64_t chunk_no) const {
    return directory_[chunk_no].num_valid;
  }

  /// Invokes `fn(chunk_no, const Chunk&)` for every non-empty chunk in
  /// chunk-number order.
  template <typename Fn>
  Status ScanChunks(Fn&& fn) const {
    for (uint64_t c = 0; c < layout_.num_chunks(); ++c) {
      if (ChunkIsEmpty(c)) continue;
      PARADISE_ASSIGN_OR_RETURN(Chunk chunk, ReadChunk(c));
      PARADISE_RETURN_IF_ERROR(fn(c, chunk));
    }
    return Status::OK();
  }

  /// Invokes `fn(chunk_no, const ChunkView&)` for every non-empty chunk in
  /// chunk-number order — the scan path the consolidation algorithm uses
  /// (no per-chunk materialization).
  template <typename Fn>
  Status ScanChunkViews(Fn&& fn) const {
    for (uint64_t c = 0; c < layout_.num_chunks(); ++c) {
      if (ChunkIsEmpty(c)) continue;
      PARADISE_ASSIGN_OR_RETURN(std::string blob, ReadChunkBlob(c));
      PARADISE_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Make(blob));
      PARADISE_RETURN_IF_ERROR(fn(c, view));
    }
    return Status::OK();
  }

  /// Total valid cells across all chunks.
  uint64_t num_valid_cells() const;

  /// Sum of serialized chunk byte lengths — the compressed array size the
  /// paper compares against the fact-file size (§5.5.1).
  uint64_t TotalDataBytes() const;

  /// Pages occupied by the data object and the meta object.
  Result<uint64_t> TotalPages() const;

  /// Persists the chunk directory to the meta object.
  Status Sync();

 private:
  struct ChunkInfo {
    uint64_t offset = 0;  // byte offset within the data object
    uint64_t bytes = 0;
    uint32_t num_valid = 0;
  };

  ChunkedArray(StorageManager* storage, ObjectId meta, ObjectId data,
               ChunkLayout layout, ArrayOptions options,
               std::vector<ChunkInfo> directory)
      : storage_(storage),
        meta_oid_(meta),
        data_oid_(data),
        layout_(std::move(layout)),
        options_(options),
        directory_(std::move(directory)) {}

  std::string SerializeMeta() const;

  /// Replaces chunk `chunk_no` with `blob` (possibly empty), rewriting the
  /// packed data object and re-basing directory offsets.
  Status RewriteChunk(uint64_t chunk_no, const std::string& blob,
                      uint32_t new_valid);

  StorageManager* storage_ = nullptr;
  ObjectId meta_oid_ = kInvalidObjectId;
  ObjectId data_oid_ = kInvalidObjectId;
  ChunkLayout layout_;
  ArrayOptions options_;
  std::vector<ChunkInfo> directory_;
};

}  // namespace paradise
