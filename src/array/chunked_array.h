// ChunkedArray: a persistent tiled n-dimensional array of int64 cells.
// All chunk blobs are packed back-to-back, in chunk-number order, inside ONE
// large object (the "data file"); a directory of per-chunk byte offsets and
// lengths lives in the array's meta object — exactly the paper's layout:
// "we use some meta data to hold the OID and the length of each chunk and
// store the meta data at the beginning of the data file" (§3.3). Packing
// means a full-array scan reads only ceil(data/page_size) pages, which is
// what makes the compressed array's scan cheaper than the fact file's.
//
// Incremental ingest (src/ingest/) versions the array: the packed-object id,
// the chunk directory, and an optional DeltaOverlay live in one immutable
// Version snapshot behind a shared_ptr. Every read method pins the current
// Version once per call, and a COPY of a ChunkedArray pins it for the copy's
// lifetime — the query engines copy the array at query start, so a whole
// query sees one consistent version while ingest commits and compactions
// publish new ones underneath. Publishing swaps one pointer; readers never
// block. A read of a chunk with overlay deltas merges them over the base
// bytes in the decode path, so delta-only and delta-over-base chunks are
// indistinguishable from a from-scratch load of the merged data.
//
// The array is optimized for bulk load + read (the paper's workload); point
// updates (PutCell/EraseCell) rewrite the packed data object in place and
// are O(array size) — load-era APIs, not safe against concurrent readers
// (ingest writes go through src/ingest/ instead).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "array/chunk.h"
#include "array/chunk_layout.h"
#include "array/delta_overlay.h"
#include "common/cancellation.h"
#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/storage_manager.h"

namespace paradise {

class ChunkedArray {
 public:
  /// Accumulates cells in memory grouped by chunk, then packs every
  /// non-empty chunk in chunk-number order into the data object (so chunk
  /// order matches byte/physical order, as §4.2's optimizations assume) and
  /// writes the meta object.
  class Builder {
   public:
    Builder(StorageManager* storage, ChunkLayout layout, ArrayOptions options)
        : storage_(storage),
          layout_(std::move(layout)),
          options_(options) {}

    /// Sets the cell at `coords` (last write wins).
    Status Put(const CellCoords& coords, int64_t value);

    /// Sets the cell at a row-major global index.
    Status PutGlobal(uint64_t global_index, int64_t value);

    /// Writes data + meta and opens the resulting array.
    Result<ChunkedArray> Finish();

   private:
    StorageManager* storage_;
    ChunkLayout layout_;
    ArrayOptions options_;
    std::map<uint64_t, Chunk> chunks_;
  };

  ChunkedArray() = default;

  // Copies share the source's immutable Version snapshot (see above); the
  // copy keeps reading that version even after the source publishes a new
  // one — the engines' per-query pin.
  ChunkedArray(const ChunkedArray& o);
  ChunkedArray& operator=(const ChunkedArray& o);
  ChunkedArray(ChunkedArray&& o) noexcept;
  ChunkedArray& operator=(ChunkedArray&& o) noexcept;

  /// Opens an array from its meta object id.
  static Result<ChunkedArray> Open(StorageManager* storage, ObjectId meta);

  const ChunkLayout& layout() const { return layout_; }
  const ArrayOptions& options() const { return options_; }
  ObjectId meta_oid() const;

  /// True when the backing file's storage format admits the bit-packed
  /// chunk codecs (page_header::kFormatCodecs, v5). Every re-encode path —
  /// point updates, overlay merges, compaction — funnels this through to
  /// Chunk::Serialize so a pre-v5 file never gains a packed chunk.
  bool allow_packed_codecs() const { return allow_packed_; }

  /// Value of one cell, or nullopt if invalid. Reads only the pages of the
  /// containing chunk (plus the overlay, which is in memory).
  Result<std::optional<int64_t>> GetCell(const CellCoords& coords) const;

  /// Writes one cell. Rewrites the packed data object; call Sync() after a
  /// batch of updates to persist the directory.
  Status PutCell(const CellCoords& coords, int64_t value);

  /// Marks one cell invalid.
  Status EraseCell(const CellCoords& coords);

  /// Reads one chunk's raw serialized bytes (empty string for an empty
  /// chunk), with any overlay deltas merged in. Pair with ChunkView for
  /// zero-copy probing.
  Result<std::string> ReadChunkBlob(uint64_t chunk_no) const;

  /// Reads and materializes one chunk.
  Result<Chunk> ReadChunk(uint64_t chunk_no) const;

  /// True if the chunk has no valid cells — neither base cells in the
  /// directory nor overlay deltas.
  bool ChunkIsEmpty(uint64_t chunk_no) const;

  /// Valid-cell count of a chunk without reading it. With an overlay this
  /// is an upper bound (base count + delta count; a delta upserting an
  /// existing cell counts twice) — exact on overlay-free arrays.
  uint32_t ChunkValidCount(uint64_t chunk_no) const;

  /// Invokes `fn(chunk_no, const Chunk&)` for every non-empty chunk in
  /// chunk-number order. The whole scan reads one pinned version.
  template <typename Fn>
  Status ScanChunks(Fn&& fn) const {
    const VersionPtr v = version();
    for (uint64_t c = 0; c < layout_.num_chunks(); ++c) {
      if (ChunkIsEmptyAt(*v, c)) continue;
      PARADISE_ASSIGN_OR_RETURN(Chunk chunk, ReadChunkAt(*v, c));
      PARADISE_RETURN_IF_ERROR(fn(c, chunk));
    }
    return Status::OK();
  }

  /// Invokes `fn(chunk_no, const ChunkView&)` for every non-empty chunk in
  /// chunk-number order — the scan path the consolidation algorithm uses
  /// (no per-chunk materialization).
  template <typename Fn>
  Status ScanChunkViews(Fn&& fn) const {
    const VersionPtr v = version();
    for (uint64_t c = 0; c < layout_.num_chunks(); ++c) {
      if (ChunkIsEmptyAt(*v, c)) continue;
      PARADISE_ASSIGN_OR_RETURN(std::string blob, ReadChunkBlobAt(*v, c));
      PARADISE_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Make(blob));
      PARADISE_RETURN_IF_ERROR(fn(c, view));
    }
    return Status::OK();
  }

  /// Total valid cells across all BASE chunks (directory sum; overlay
  /// deltas not counted — see DeltaOverlay::total_cells for those).
  uint64_t num_valid_cells() const;

  /// Sum of serialized base-chunk byte lengths — the compressed array size
  /// the paper compares against the fact-file size (§5.5.1).
  uint64_t TotalDataBytes() const;

  /// Pages occupied by the data object and the meta object.
  Result<uint64_t> TotalPages() const;

  /// Persists the chunk directory to the meta object.
  Status Sync();

  // --- incremental ingest (src/ingest/) ---

  /// Publishes a new Version with `overlay` replacing the current one (null
  /// clears it). The base object and directory are unchanged; in-flight
  /// readers keep their pinned version.
  void PublishOverlay(std::shared_ptr<const DeltaOverlay> overlay);

  /// The current version's overlay (null when none).
  std::shared_ptr<const DeltaOverlay> overlay() const { return version()->overlay; }

  /// A compaction prepared by PrepareCompaction: the copy-on-write
  /// replacement objects plus the ids the publisher must retire once no
  /// reader can still hold the old version.
  struct Compaction {
    ObjectId old_data_oid = kInvalidObjectId;
    ObjectId old_meta_oid = kInvalidObjectId;
    ObjectId new_data_oid = kInvalidObjectId;
    ObjectId new_meta_oid = kInvalidObjectId;
    uint64_t merged_chunks = 0;
    uint64_t merged_cells = 0;

   private:
    friend class ChunkedArray;
    // `pending` is the type-erased Version swapped in by PublishCompaction;
    // `replaced` is the old storage generation's base_ref token, shared by
    // EVERY version that reads the old data/meta objects — the version
    // current at prepare time and any older overlay siblings still pinned
    // by readers — so retirability sees all of them, not just the latest.
    std::shared_ptr<const void> pending;
    std::shared_ptr<const void> replaced;
  };

  /// Merges `overlay` into a copy-on-write rewrite of the packed data
  /// object: reads every delta-bearing chunk of the CURRENT base (never
  /// through the overlay), merges, and writes a brand-new data object and
  /// meta object. The current version stays untouched and fully readable —
  /// nothing is visible until PublishCompaction. Per-chunk merges fan out
  /// on `io_pool` when non-null. `cancel` is polled at every chunk; a fired
  /// token abandons the merge with the token's typed status and no
  /// allocation left behind except unreferenced pages reclaimed by the
  /// caller's abort path (none are allocated before all merges succeed).
  Result<Compaction> PrepareCompaction(const DeltaOverlay& overlay,
                                       IoPool* io_pool,
                                       const CancellationToken* cancel);

  /// Swaps in the compacted version (new data/meta objects, no overlay).
  /// The caller owns durability ordering and retiring the old objects.
  void PublishCompaction(const Compaction& c);

  /// True once no pinned copy or in-flight reader can still reference the
  /// storage generation `c` replaced, so its old objects may be freed.
  /// `replaced` is the generation's shared base_ref token: every Version
  /// reading the old objects (including overlay siblings pinned before the
  /// compaction) holds it, so use_count()==1 means only `c` itself does,
  /// and new references can only be minted from existing ones — the answer
  /// is stable.
  static bool CompactionRetirable(const Compaction& c) {
    return c.replaced == nullptr || c.replaced.use_count() <= 1;
  }

 private:
  struct ChunkInfo {
    uint64_t offset = 0;  // byte offset within the data object
    uint64_t bytes = 0;
    uint32_t num_valid = 0;
  };

  /// Immutable storage snapshot; swapped atomically under version_mu_.
  struct Version {
    ObjectId meta_oid = kInvalidObjectId;
    ObjectId data_oid = kInvalidObjectId;
    std::vector<ChunkInfo> directory;
    std::shared_ptr<const DeltaOverlay> overlay;  // null = none
    // Identity token of the (data_oid, meta_oid) storage generation.
    // Overlay publishes copy it; only compaction mints a new one, so its
    // use_count tells whether ANY version still reads the old objects.
    std::shared_ptr<const void> base_ref;
  };
  using VersionPtr = std::shared_ptr<const Version>;

  ChunkedArray(StorageManager* storage, ObjectId meta, ObjectId data,
               ChunkLayout layout, ArrayOptions options,
               std::vector<ChunkInfo> directory);

  VersionPtr version() const {
    std::lock_guard<std::mutex> lk(version_mu_);
    return version_;
  }
  void StoreVersion(VersionPtr v) {
    std::lock_guard<std::mutex> lk(version_mu_);
    version_ = std::move(v);
  }

  static std::string SerializeMeta(const Version& v, const ChunkLayout& layout,
                                   const ArrayOptions& options);

  bool ChunkIsEmptyAt(const Version& v, uint64_t chunk_no) const {
    return v.directory[chunk_no].num_valid == 0 &&
           (v.overlay == nullptr || v.overlay->Find(chunk_no) == nullptr);
  }

  /// Base bytes only, no overlay merge.
  Result<std::string> ReadBaseChunkBlobAt(const Version& v,
                                          uint64_t chunk_no) const;
  /// Overlay-merged bytes.
  Result<std::string> ReadChunkBlobAt(const Version& v,
                                      uint64_t chunk_no) const;
  Result<Chunk> ReadChunkAt(const Version& v, uint64_t chunk_no) const;

  /// Replaces chunk `chunk_no` with `blob` (possibly empty), rewriting the
  /// packed data object IN PLACE and storing a version with the re-based
  /// directory (load-era point updates; not concurrent-reader safe).
  Status RewriteChunk(uint64_t chunk_no, const std::string& blob,
                      uint32_t new_valid);

  StorageManager* storage_ = nullptr;
  ChunkLayout layout_;
  ArrayOptions options_;
  bool allow_packed_ = false;  // storage format >= v5 (see allow_packed_codecs)
  mutable std::mutex version_mu_;  // guards only the version_ pointer swap
  VersionPtr version_;
};

}  // namespace paradise
