#include "array/chunk_prefetcher.h"

#include <algorithm>
#include <utility>

#include "array/chunked_array.h"
#include "storage/buffer_pool.h"
#include "storage/io_pool.h"

namespace paradise {

ChunkReadAhead::ChunkReadAhead(const ChunkedArray* array,
                               std::vector<uint64_t> chunks, size_t depth,
                               IoPool* io_pool, BufferPool* pool)
    : state_(std::make_shared<State>()), depth_(depth), io_pool_(io_pool) {
  state_->array = array;
  state_->pool = pool;
  state_->chunks = std::move(chunks);
  state_->slots.resize(state_->chunks.size());
}

ChunkReadAhead::~ChunkReadAhead() {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cancelled = true;
  // Tasks not yet started will see `cancelled` and bail before touching the
  // array; tasks mid-read hold the array pointer, so wait those out.
  state_->cv.wait(lock, [this] { return state_->in_flight == 0; });
  // Blobs read ahead but never claimed (early scan termination) were wasted
  // I/O; account them so prefetch tuning can see over-eager windows.
  uint64_t wasted = 0;
  for (size_t idx = state_->next_claim; idx < state_->slots.size(); ++idx) {
    if (state_->slots[idx].state == Slot::kReady) ++wasted;
  }
  if (state_->pool != nullptr) state_->pool->RecordPrefetchWasted(wasted);
}

void ChunkReadAhead::ScheduleWindow(const std::shared_ptr<State>& st,
                                    size_t depth, IoPool* io_pool) {
  if (io_pool == nullptr || depth == 0) return;
  const size_t end = std::min(st->chunks.size(), st->next_claim + depth);
  if (st->next_schedule < st->next_claim) st->next_schedule = st->next_claim;
  for (; st->next_schedule < end; ++st->next_schedule) {
    const size_t idx = st->next_schedule;
    if (st->slots[idx].state != Slot::kIdle) continue;
    st->slots[idx].state = Slot::kScheduled;
    ++st->in_flight;
    const bool accepted = io_pool->Submit([st, idx] {
      std::unique_lock<std::mutex> lock(st->mu);
      if (st->cancelled || st->slots[idx].state != Slot::kScheduled) {
        --st->in_flight;
        st->cv.notify_all();
        return;
      }
      lock.unlock();
      Result<std::string> blob = st->array->ReadChunkBlob(st->chunks[idx]);
      lock.lock();
      Slot& slot = st->slots[idx];
      if (blob.ok()) {
        slot.blob = std::move(blob).value();
        slot.state = Slot::kReady;
        if (st->pool != nullptr) st->pool->RecordPrefetch();
      } else {
        slot.status = blob.status();
        slot.state = Slot::kFailed;
      }
      --st->in_flight;
      st->cv.notify_all();
    });
    if (!accepted) {
      // Pool shut down: fall back to synchronous reads on the consumers.
      st->slots[idx].state = Slot::kIdle;
      --st->in_flight;
      return;
    }
  }
}

Result<bool> ChunkReadAhead::Next(uint64_t* chunk_no, std::string* blob) {
  std::shared_ptr<State>& st = state_;
  std::unique_lock<std::mutex> lock(st->mu);
  if (st->next_claim >= st->chunks.size()) return false;
  const size_t idx = st->next_claim++;
  ScheduleWindow(st, depth_, io_pool_);

  Slot& slot = st->slots[idx];
  if (slot.state == Slot::kReady) {
    if (st->pool != nullptr) st->pool->RecordPrefetchHit();
  } else if (slot.state == Slot::kScheduled) {
    st->cv.wait(lock, [&slot] {
      return slot.state == Slot::kReady || slot.state == Slot::kFailed;
    });
  }

  switch (slot.state) {
    case Slot::kReady:
      *chunk_no = st->chunks[idx];
      *blob = std::move(slot.blob);
      slot.blob.clear();
      return true;
    case Slot::kFailed:
      return slot.status;
    default: {
      // Never scheduled: read synchronously, off the latch so other
      // consumers can claim and wait concurrently.
      const uint64_t chunk = st->chunks[idx];
      lock.unlock();
      PARADISE_ASSIGN_OR_RETURN(std::string bytes,
                                st->array->ReadChunkBlob(chunk));
      *chunk_no = chunk;
      *blob = std::move(bytes);
      return true;
    }
  }
}

}  // namespace paradise
