// StarSchema: the logical description of one OLAP cube (paper §2) — n
// dimensions, each with a key and hierarchy attributes, plus one measure.
// The same description drives both physical designs: the relational star
// schema (fact file + dimension tables, §2.2) and the OLAP Array ADT
// (§2.3).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/schema.h"

namespace paradise {

struct DimensionSpec {
  std::string name;
  /// attrs[0] must be the int32 key; the rest are hierarchy attributes,
  /// finest first.
  std::vector<Column> attrs;

  Schema ToSchema() const { return Schema(attrs); }
};

struct StarSchema {
  std::string cube_name = "cube";
  /// The p measures of the cube (§2's M = {m_1..m_p}), int64 each.
  std::vector<std::string> measures = {"volume"};
  std::vector<DimensionSpec> dims;

  size_t num_dims() const { return dims.size(); }
  size_t num_measures() const { return measures.size(); }

  /// Convenience for the common single-measure case.
  const std::string& measure_name() const { return measures[0]; }

  /// Index of a measure by (case-sensitive) name.
  Result<size_t> MeasureIndex(std::string_view name) const;

  /// The relational fact schema: one int32 foreign key per dimension (named
  /// by the dimension's key attribute) plus one int64 column per measure.
  Schema FactSchema() const;

  Status Validate() const;

  /// Persistence in the database catalog.
  std::string Serialize() const;
  static Result<StarSchema> Deserialize(std::string_view data);
};

}  // namespace paradise
