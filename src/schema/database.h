// Database: one OLAP cube materialized under BOTH physical designs inside a
// single storage file — the relational star schema (fact file + heap
// dimension tables + bitmap join indexes) and the OLAP Array ADT — exactly
// the paper's experimental setup, where both competitors live inside
// Paradise and share its storage manager and buffer pool.
//
// Load protocol:
//   auto db = Database::Create(path, star_schema, options);
//   db->AppendDimensionRow(d, tuple);  ...  (every dimension fully loaded)
//   db->BeginFacts();
//   db->AppendFact(keys, measure);     ...
//   db->FinishLoad();                  // builds array, B-trees, bitmaps
// After FinishLoad (or Open of a previously built file) the query engines in
// query/engine.h can run.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "core/olap_array.h"
#include "index/bitmap_index.h"
#include "relational/dimension_table.h"
#include "relational/fact_file.h"
#include "schema/star_schema.h"
#include "storage/storage_manager.h"

namespace paradise {

class IngestManager;

struct DatabaseOptions {
  StorageOptions storage;
  ArrayOptions array;

  /// Per-dimension chunk extents for the OLAP array; empty = use
  /// array.default_chunk_extent everywhere.
  std::vector<uint32_t> chunk_extents;

  /// Build the OLAP Array ADT during FinishLoad.
  bool build_array = true;

  /// Build bitmap join indexes on every non-key dimension attribute during
  /// FinishLoad (the paper creates them ahead of query time, §4.5).
  bool build_bitmap_indexes = true;

  /// Also build B-tree join indexes (attribute value → fact tuple number)
  /// on every non-key attribute — the §4.4 baseline plan. Off by default:
  /// it costs one B-tree insert per (fact tuple × attribute).
  bool build_btree_join_indexes = false;
};

class Database {
 public:
  /// Creates a new database file holding an empty cube.
  static Result<std::unique_ptr<Database>> Create(const std::string& path,
                                                  StarSchema schema,
                                                  DatabaseOptions options);

  /// Opens a previously built database. Committed-but-uncompacted ingest
  /// generations are recovered and republished as overlays, so the newest
  /// epoch serves the merged data immediately.
  static Result<std::unique_ptr<Database>> Open(const std::string& path,
                                                DatabaseOptions options);

  ~Database();

  /// Appends one row to dimension `d`. Only valid before BeginFacts().
  Status AppendDimensionRow(size_t d, const Tuple& row);

  /// Freezes the dimensions and prepares fact loading.
  Status BeginFacts();

  /// Appends one fact (dimension keys in dimension order + one value per
  /// measure) to the fact file and, if enabled, to the OLAP array builder.
  Status AppendFact(const std::vector<int32_t>& keys,
                    const std::vector<int64_t>& measures);

  /// Single-measure convenience.
  Status AppendFact(const std::vector<int32_t>& keys, int64_t measure) {
    return AppendFact(keys, std::vector<int64_t>{measure});
  }

  /// Finalizes everything: fact file, OLAP array, bitmap indexes, catalog.
  Status FinishLoad();

  // --- accessors (valid after FinishLoad or Open) ---
  const StarSchema& schema() const { return schema_; }
  const Schema& fact_schema() const { return fact_schema_; }
  StorageManager* storage() { return storage_.get(); }
  FactFile* fact() { return &fact_; }
  const FactFile* fact() const { return &fact_; }
  OlapArray* olap() { return &olap_; }
  const OlapArray* olap() const { return &olap_; }
  bool has_olap() const { return has_olap_; }
  const DimensionTable& dim(size_t d) const { return dims_[d]; }
  std::vector<const DimensionTable*> DimPointers() const;

  /// bitmap_indexes()[dim][col]; null where no index was built.
  const std::vector<std::vector<std::shared_ptr<BitmapJoinIndex>>>&
  bitmap_indexes() const {
    return bitmap_indexes_;
  }

  /// btree_join_roots()[dim][col]: root of the value → tuple-number B-tree,
  /// kInvalidPageId where none was built.
  const std::vector<std::vector<PageId>>& btree_join_roots() const {
    return btree_join_roots_;
  }

  /// Incremental write path (null until the OLAP array exists — ingest
  /// targets the array only).
  IngestManager* ingest() { return ingest_.get(); }

  /// True once any ingest commit ever landed. The relational fact file is
  /// stale from then on, so the relational engines are gated off with a
  /// typed error and the planner always picks the array.
  bool ingested() const;

  /// An (epoch, OLAP-array snapshot) pair captured atomically against
  /// concurrent ingest publication: the returned array copy keeps reading
  /// exactly the version set that was current at `epoch`, no matter what
  /// commits or compactions publish afterwards.
  struct PinnedArray {
    OlapArray array;
    uint64_t epoch = 0;
  };
  PinnedArray PinArray() const;

  /// Checkpoint + version publication under the pin lock, so PinArray()
  /// can never observe the new epoch without the published versions or the
  /// old epoch with them. IngestManager calls this; nothing else should.
  Status PublishIngest(const std::function<Status()>& publish);

  /// Cold-run protocol: flush and drop every buffered page.
  Status DropCaches() { return storage_->FlushAndEvictAll(); }

  /// Commit epoch of the backing file — the version number cached query
  /// results are keyed on (query/result_cache.h). Stale after a durable
  /// commit, never after a clean reload.
  uint64_t commit_epoch() const { return storage_->commit_epoch(); }

  /// Identity string scoping result-cache entries to this file + cube.
  std::string CacheScope() const {
    return storage_->disk()->path() + "#" + schema_.cube_name;
  }

  /// Storage accounting for the benches.
  struct StorageReport {
    uint64_t fact_file_bytes = 0;    // used data pages * page size
    uint64_t array_data_bytes = 0;   // serialized chunk bytes
    uint64_t array_pages_bytes = 0;  // chunk + directory page footprint
    uint64_t bitmap_bytes = 0;       // all bitmap-index bitmaps
    uint64_t file_bytes = 0;         // whole database file
  };
  Result<StorageReport> ReportStorage() const;

 private:
  Database() = default;

  Status BuildBitmapIndexes();
  Status BuildBTreeJoinIndexes();

  DatabaseOptions options_;
  StarSchema schema_;
  Schema fact_schema_;
  std::unique_ptr<StorageManager> storage_;
  std::vector<DimensionTable> dims_;
  FactFile fact_;
  OlapArray olap_;
  bool has_olap_ = false;
  std::vector<std::vector<std::shared_ptr<BitmapJoinIndex>>> bitmap_indexes_;
  std::vector<std::vector<PageId>> btree_join_roots_;
  std::unique_ptr<IngestManager> ingest_;
  // Guards the (commit_epoch, published array versions) pairing: PinArray()
  // reads both under it; PublishIngest() advances both under it.
  mutable std::mutex array_pin_mu_;

  // Load-time state.
  bool facts_begun_ = false;
  bool load_finished_ = false;
  std::unique_ptr<OlapArray::Builder> olap_builder_;
};

}  // namespace paradise
