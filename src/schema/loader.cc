#include "schema/loader.h"

namespace paradise {

namespace {

Result<std::unique_ptr<Database>> BuildDatabaseFromDatasetImpl(
    const std::string& path, const gen::SyntheticDataset& data,
    DatabaseOptions options) {
  if (options.chunk_extents.empty()) {
    options.chunk_extents = data.config.chunk_extents;
  }
  StarSchema schema = data.ToStarSchema();
  PARADISE_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                            Database::Create(path, schema, options));

  // Dimension rows: key k is row k; attribute values follow the generated
  // hierarchy codes.
  for (size_t d = 0; d < data.config.dims.size(); ++d) {
    const gen::GenDimension& gd = data.config.dims[d];
    const Schema dim_schema = schema.dims[d].ToSchema();
    for (uint32_t key = 0; key < gd.size; ++key) {
      Tuple row(&dim_schema);
      row.SetInt32(0, static_cast<int32_t>(key));
      for (size_t level = 1; level <= gd.level_cardinalities.size();
           ++level) {
        PARADISE_RETURN_IF_ERROR(row.SetString(
            level, gen::AttrValue(d, level, gd.LevelCode(level, key))));
      }
      PARADISE_RETURN_IF_ERROR(db->AppendDimensionRow(d, row));
    }
  }

  PARADISE_RETURN_IF_ERROR(db->BeginFacts());
  for (size_t i = 0; i < data.cell_global_indices.size(); ++i) {
    PARADISE_RETURN_IF_ERROR(db->AppendFact(
        data.CellKeys(data.cell_global_indices[i]), data.measures[i]));
  }
  PARADISE_RETURN_IF_ERROR(db->FinishLoad());
  return db;
}

}  // namespace

Result<std::unique_ptr<Database>> BuildDatabaseFromDataset(
    const std::string& path, const gen::SyntheticDataset& data,
    DatabaseOptions options) {
  Result<std::unique_ptr<Database>> r =
      BuildDatabaseFromDatasetImpl(path, data, std::move(options));
  if (!r.ok()) {
    return r.status().WithContext("loading database '" + path + "'");
  }
  return r;
}

Result<std::unique_ptr<Database>> BuildDatabaseFromConfig(
    const std::string& path, const gen::GenConfig& config,
    DatabaseOptions options) {
  PARADISE_ASSIGN_OR_RETURN(gen::SyntheticDataset data,
                            gen::Generate(config));
  return BuildDatabaseFromDataset(path, data, std::move(options));
}

}  // namespace paradise
