#include "schema/snowflake.h"

#include "common/coding.h"
#include "relational/heap_file.h"

namespace paradise {

namespace {

std::string BaseRoot(const std::string& dim) { return "snow." + dim + ".base"; }
std::string LevelRoot(const std::string& dim, const std::string& level) {
  return "snow." + dim + "." + level;
}

// Record encodings (variable-length heap records):
//   base row:  fixed32 key + fixed32 level0 id
//   level row: fixed32 id + fixed32 parent id (as uint32; -1 = none) +
//              value bytes (rest of record)
std::string EncodeBaseRow(int32_t key, int32_t id) {
  std::string out(8, '\0');
  EncodeFixed32(out.data(), static_cast<uint32_t>(key));
  EncodeFixed32(out.data() + 4, static_cast<uint32_t>(id));
  return out;
}

std::string EncodeLevelRow(const SnowflakeLevelRow& row) {
  std::string out(8, '\0');
  EncodeFixed32(out.data(), static_cast<uint32_t>(row.id));
  EncodeFixed32(out.data() + 4, static_cast<uint32_t>(row.parent_id));
  out.append(row.value);
  return out;
}

Result<SnowflakeLevelRow> DecodeLevelRow(const std::string& record) {
  if (record.size() < 8) {
    return Status::Corruption("snowflake level row too small");
  }
  SnowflakeLevelRow row;
  row.id = static_cast<int32_t>(DecodeFixed32(record.data()));
  row.parent_id = static_cast<int32_t>(DecodeFixed32(record.data() + 4));
  row.value = record.substr(8);
  return row;
}

}  // namespace

Result<SnowflakeDimension> SnowflakeDimension::Normalize(
    const DimensionTable& flat) {
  SnowflakeDimension out;
  out.name_ = flat.name();
  const size_t num_levels = flat.schema().num_columns() - 1;
  if (num_levels == 0) {
    return Status::InvalidArgument("dimension '" + flat.name() +
                                   "' has no hierarchy levels to normalize");
  }
  for (size_t l = 1; l <= num_levels; ++l) {
    out.level_names_.push_back(flat.schema().column(l).name);
  }
  out.levels_.resize(num_levels);

  // Level ids are the dictionary codes. Validate the FD level l -> level
  // l+1 while assigning parents.
  for (size_t l = 0; l < num_levels; ++l) {
    PARADISE_ASSIGN_OR_RETURN(const AttributeDictionary* dict,
                              flat.Dictionary(l + 1));
    out.levels_[l].resize(dict->cardinality());
    for (int32_t code = 0; code < dict->cardinality(); ++code) {
      out.levels_[l][code] =
          SnowflakeLevelRow{code, dict->code_to_display[code], -1};
    }
  }
  for (uint32_t row = 0; row < flat.num_rows(); ++row) {
    for (size_t l = 0; l + 1 < num_levels; ++l) {
      PARADISE_ASSIGN_OR_RETURN(int32_t child, flat.RowAttrCode(row, l + 1));
      PARADISE_ASSIGN_OR_RETURN(int32_t parent, flat.RowAttrCode(row, l + 2));
      int32_t& slot = out.levels_[l][child].parent_id;
      if (slot == -1) {
        slot = parent;
      } else if (slot != parent) {
        return Status::InvalidArgument(
            "dimension '" + flat.name() + "' is not a snowflake: value '" +
            out.levels_[l][child].value + "' of level '" +
            out.level_names_[l] + "' maps to two different '" +
            out.level_names_[l + 1] + "' values");
      }
    }
  }

  out.base_.reserve(flat.num_rows());
  for (uint32_t row = 0; row < flat.num_rows(); ++row) {
    PARADISE_ASSIGN_OR_RETURN(int32_t level0, flat.RowAttrCode(row, 1));
    out.base_.emplace_back(flat.rows()[row].GetInt32(0), level0);
  }
  return out;
}

Status SnowflakeDimension::Persist(StorageManager* storage) const {
  {
    PARADISE_ASSIGN_OR_RETURN(HeapFile base, HeapFile::Create(storage->pool()));
    for (const auto& [key, id] : base_) {
      PARADISE_RETURN_IF_ERROR(base.Append(EncodeBaseRow(key, id)).status());
    }
    PARADISE_RETURN_IF_ERROR(
        storage->SetRoot(BaseRoot(name_), base.first_page()));
  }
  for (size_t l = 0; l < levels_.size(); ++l) {
    PARADISE_ASSIGN_OR_RETURN(HeapFile table,
                              HeapFile::Create(storage->pool()));
    for (const SnowflakeLevelRow& row : levels_[l]) {
      PARADISE_RETURN_IF_ERROR(table.Append(EncodeLevelRow(row)).status());
    }
    PARADISE_RETURN_IF_ERROR(storage->SetRoot(
        LevelRoot(name_, level_names_[l]), table.first_page()));
  }
  return Status::OK();
}

Result<SnowflakeDimension> SnowflakeDimension::Load(
    StorageManager* storage, const std::string& name,
    const std::vector<std::string>& level_names) {
  SnowflakeDimension out;
  out.name_ = name;
  out.level_names_ = level_names;
  out.levels_.resize(level_names.size());

  PARADISE_ASSIGN_OR_RETURN(uint64_t base_page,
                            storage->GetRoot(BaseRoot(name)));
  PARADISE_ASSIGN_OR_RETURN(HeapFile base,
                            HeapFile::Open(storage->pool(), base_page));
  PARADISE_ASSIGN_OR_RETURN(HeapFileIterator it, base.Scan());
  while (it.Valid()) {
    if (it.record().size() != 8) {
      return Status::Corruption("bad snowflake base row");
    }
    out.base_.emplace_back(
        static_cast<int32_t>(DecodeFixed32(it.record().data())),
        static_cast<int32_t>(DecodeFixed32(it.record().data() + 4)));
    PARADISE_RETURN_IF_ERROR(it.Next());
  }

  for (size_t l = 0; l < level_names.size(); ++l) {
    PARADISE_ASSIGN_OR_RETURN(
        uint64_t page, storage->GetRoot(LevelRoot(name, level_names[l])));
    PARADISE_ASSIGN_OR_RETURN(HeapFile table,
                              HeapFile::Open(storage->pool(), page));
    PARADISE_ASSIGN_OR_RETURN(HeapFileIterator lit, table.Scan());
    while (lit.Valid()) {
      PARADISE_ASSIGN_OR_RETURN(SnowflakeLevelRow row,
                                DecodeLevelRow(lit.record()));
      out.levels_[l].push_back(std::move(row));
      PARADISE_RETURN_IF_ERROR(lit.Next());
    }
    // Rows persist in id order; verify.
    for (size_t i = 0; i < out.levels_[l].size(); ++i) {
      if (out.levels_[l][i].id != static_cast<int32_t>(i)) {
        return Status::Corruption("snowflake level table out of id order");
      }
    }
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> SnowflakeDimension::Denormalize()
    const {
  std::vector<std::vector<std::string>> out;
  out.reserve(base_.size());
  for (const auto& [key, level0] : base_) {
    std::vector<std::string> values;
    values.reserve(levels_.size());
    int32_t id = level0;
    for (size_t l = 0; l < levels_.size(); ++l) {
      if (id < 0 || static_cast<size_t>(id) >= levels_[l].size()) {
        return Status::Corruption("broken snowflake FK chain in '" + name_ +
                                  "'");
      }
      values.push_back(levels_[l][id].value);
      id = levels_[l][id].parent_id;
    }
    out.push_back(std::move(values));
  }
  return out;
}

Result<DimensionTable> SnowflakeDimension::ToDimensionTable(
    BufferPool* pool, const Schema& schema) const {
  if (schema.num_columns() != levels_.size() + 1) {
    return Status::InvalidArgument("schema arity mismatch for snowflake '" +
                                   name_ + "'");
  }
  PARADISE_ASSIGN_OR_RETURN(DimensionTable table,
                            DimensionTable::Create(pool, name_, schema));
  PARADISE_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> values,
                            Denormalize());
  for (size_t m = 0; m < base_.size(); ++m) {
    Tuple row(&table.schema());
    row.SetInt32(0, base_[m].first);
    for (size_t l = 0; l < levels_.size(); ++l) {
      PARADISE_RETURN_IF_ERROR(row.SetString(l + 1, values[m][l]));
    }
    PARADISE_RETURN_IF_ERROR(table.Append(row));
  }
  return table;
}

}  // namespace paradise
