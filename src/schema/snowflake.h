// Snowflake schema support (§2.2: the star schema "or its slightly more
// complex variant, the snowflake schema"). In a snowflake, each hierarchy
// level of a dimension is normalized into its own table:
//
//   product(pid, type_id)          -- base table, FK into the finest level
//   type(type_id, name, cat_id)    -- level 1, FK into level 2
//   category(cat_id, name)         -- level 2 (top)
//
// The query engines always run against the denormalized (star) form — as
// the paper's do — so this module provides the two mappings:
//   * Normalize: a flat DimensionTable -> level tables, validating the
//     functional dependencies (finer level determines coarser level) a
//     snowflake requires;
//   * Denormalize: level tables -> the flat per-member attribute values,
//     from which a star DimensionTable is rebuilt.
// Level tables persist as heap files under catalog keys
// "snow.<dimension>.<level>" (base table under "snow.<dimension>.base").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relational/dimension_table.h"
#include "storage/storage_manager.h"

namespace paradise {

/// One row of a normalized level table.
struct SnowflakeLevelRow {
  int32_t id = 0;           // dense level code
  std::string value;        // attribute display value
  int32_t parent_id = -1;   // id in the next-coarser level; -1 at the top
};

/// One dimension in snowflake form.
class SnowflakeDimension {
 public:
  SnowflakeDimension() = default;

  /// Derives the level tables from a flat dimension table. Fails with
  /// FailedPrecondition-style InvalidArgument if the data violates the
  /// snowflake's functional dependencies (two members with the same value
  /// at level l but different values at level l+1).
  static Result<SnowflakeDimension> Normalize(const DimensionTable& flat);

  /// Persists the base table and every level table as heap files; catalog
  /// entries go under "snow.<name>.*".
  Status Persist(StorageManager* storage) const;

  /// Loads a persisted snowflake dimension.
  static Result<SnowflakeDimension> Load(StorageManager* storage,
                                         const std::string& name,
                                         const std::vector<std::string>&
                                             level_names);

  const std::string& name() const { return name_; }
  size_t num_levels() const { return level_names_.size(); }
  const std::vector<std::string>& level_names() const { return level_names_; }

  /// Base table: member key -> finest-level id, in member order.
  const std::vector<std::pair<int32_t, int32_t>>& base() const {
    return base_;
  }

  /// Rows of level `l` (0 = finest), in id order.
  const std::vector<SnowflakeLevelRow>& level(size_t l) const {
    return levels_[l];
  }

  /// Rebuilds the flat per-member attribute values: for each base member,
  /// one display value per level, by walking the FK chain.
  Result<std::vector<std::vector<std::string>>> Denormalize() const;

  /// Rebuilds a star DimensionTable (keyed and attributed like the
  /// original) from the snowflake form.
  Result<DimensionTable> ToDimensionTable(BufferPool* pool,
                                          const Schema& schema) const;

 private:
  std::string name_;
  std::vector<std::string> level_names_;                 // finest first
  std::vector<std::pair<int32_t, int32_t>> base_;        // (key, level0 id)
  std::vector<std::vector<SnowflakeLevelRow>> levels_;   // per level
};

}  // namespace paradise
