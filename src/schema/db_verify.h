// Database verification: the library behind the `dbverify` tool. Runs the
// storage scrub (storage/scrub.h), then opens the database read-only and
// cross-checks the structures above the page layer: catalog roots in bounds,
// fact-file extents in bounds / non-overlapping / disjoint from the free
// list, and every fact tuple reachable. Verification never writes to the
// file.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "schema/database.h"
#include "storage/scrub.h"

namespace paradise {

struct VerifyReport {
  ScrubReport scrub;
  /// Database-level findings (scrub findings live in `scrub.issues`).
  std::vector<std::string> issues;
  uint64_t page_count = 0;
  uint64_t catalog_entries = 0;
  uint64_t fact_tuples = 0;
  /// Non-empty OLAP-array chunks whose serialized codec passed validation
  /// (header parse + per-cell offset order/bounds), summed over measures.
  uint64_t chunks_verified = 0;
  /// Ingest state (zero when the file has never seen an ingest commit).
  uint64_t ingest_generations = 0;
  uint64_t ingest_overlay_cells = 0;
  uint64_t ingest_applied_cells = 0;

  bool clean() const { return issues.empty() && scrub.clean(); }

  /// All findings, scrub first, for uniform reporting.
  std::vector<std::string> AllIssues() const;
};

/// Verifies the database at `path`. `options.storage.read_only` is forced
/// on. Returns non-OK only when verification cannot run at all (e.g. the
/// file does not exist); every consistency finding — including a file whose
/// storage or database layer refuses to open — lands in the report.
Result<VerifyReport> VerifyDatabase(const std::string& path,
                                    DatabaseOptions options);

/// Convenience for tooling: probes page size and format from the raw file
/// header, then runs VerifyDatabase.
Result<VerifyReport> VerifyDatabaseFile(const std::string& path);

}  // namespace paradise
