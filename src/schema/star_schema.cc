#include "schema/star_schema.h"

#include "common/coding.h"

namespace paradise {

Schema StarSchema::FactSchema() const {
  std::vector<Column> cols;
  cols.reserve(dims.size() + measures.size());
  for (const DimensionSpec& d : dims) {
    cols.push_back(Column{d.attrs[0].name, ColumnType::kInt32});
  }
  for (const std::string& m : measures) {
    cols.push_back(Column{m, ColumnType::kInt64});
  }
  return Schema(std::move(cols));
}

Result<size_t> StarSchema::MeasureIndex(std::string_view name) const {
  for (size_t i = 0; i < measures.size(); ++i) {
    if (measures[i] == name) return i;
  }
  return Status::NotFound("no measure named '" + std::string(name) + "'");
}

Status StarSchema::Validate() const {
  if (dims.empty()) {
    return Status::InvalidArgument("star schema needs at least one dimension");
  }
  if (measures.empty()) {
    return Status::InvalidArgument("star schema needs at least one measure");
  }
  for (const DimensionSpec& d : dims) {
    if (d.name.empty()) {
      return Status::InvalidArgument("dimension with empty name");
    }
    if (d.attrs.empty() || d.attrs[0].type != ColumnType::kInt32) {
      return Status::InvalidArgument("dimension '" + d.name +
                                     "' must start with an int32 key");
    }
  }
  return Status::OK();
}

std::string StarSchema::Serialize() const {
  std::string out;
  char scratch[4];
  auto append_string = [&](const std::string& s) {
    EncodeFixed32(scratch, static_cast<uint32_t>(s.size()));
    out.append(scratch, 4);
    out.append(s);
  };
  append_string(cube_name);
  EncodeFixed32(scratch, static_cast<uint32_t>(measures.size()));
  out.append(scratch, 4);
  for (const std::string& m : measures) append_string(m);
  EncodeFixed32(scratch, static_cast<uint32_t>(dims.size()));
  out.append(scratch, 4);
  for (const DimensionSpec& d : dims) {
    append_string(d.name);
    append_string(d.ToSchema().Serialize());
  }
  return out;
}

Result<StarSchema> StarSchema::Deserialize(std::string_view data) {
  const char* p = data.data();
  const char* end = data.data() + data.size();
  auto read_string = [&](std::string* out) -> Status {
    if (p + 4 > end) return Status::Corruption("star schema blob truncated");
    const uint32_t len = DecodeFixed32(p);
    p += 4;
    if (p + len > end) return Status::Corruption("star schema blob truncated");
    out->assign(p, len);
    p += len;
    return Status::OK();
  };
  StarSchema schema;
  PARADISE_RETURN_IF_ERROR(read_string(&schema.cube_name));
  if (p + 4 > end) return Status::Corruption("star schema blob truncated");
  const uint32_t num_measures = DecodeFixed32(p);
  p += 4;
  schema.measures.clear();
  for (uint32_t i = 0; i < num_measures; ++i) {
    std::string m;
    PARADISE_RETURN_IF_ERROR(read_string(&m));
    schema.measures.push_back(std::move(m));
  }
  if (p + 4 > end) return Status::Corruption("star schema blob truncated");
  const uint32_t num_dims = DecodeFixed32(p);
  p += 4;
  for (uint32_t i = 0; i < num_dims; ++i) {
    DimensionSpec spec;
    PARADISE_RETURN_IF_ERROR(read_string(&spec.name));
    std::string schema_blob;
    PARADISE_RETURN_IF_ERROR(read_string(&schema_blob));
    PARADISE_ASSIGN_OR_RETURN(Schema s, Schema::Deserialize(schema_blob));
    for (size_t c = 0; c < s.num_columns(); ++c) {
      spec.attrs.push_back(s.column(c));
    }
    schema.dims.push_back(std::move(spec));
  }
  PARADISE_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

}  // namespace paradise
