#include "schema/database.h"

#include "ingest/ingest.h"

namespace paradise {

Database::~Database() = default;

namespace {
constexpr char kSchemaRoot[] = "star_schema";
constexpr char kFactRoot[] = "fact_file";

std::string DimRootName(const std::string& dim_name) {
  return "dim." + dim_name;
}
std::string BitmapRootName(const std::string& dim_name, size_t col) {
  return "bitmap." + dim_name + "." + std::to_string(col);
}
std::string JoinIndexRootName(const std::string& dim_name, size_t col) {
  return "jidx." + dim_name + "." + std::to_string(col);
}
}  // namespace

Result<std::unique_ptr<Database>> Database::Create(const std::string& path,
                                                   StarSchema schema,
                                                   DatabaseOptions options) {
  PARADISE_RETURN_IF_ERROR(schema.Validate());
  PARADISE_RETURN_IF_ERROR(options.array.Validate());
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = std::move(options);
  db->schema_ = std::move(schema);
  db->fact_schema_ = db->schema_.FactSchema();
  db->storage_ = std::make_unique<StorageManager>();
  PARADISE_RETURN_IF_ERROR(
      db->storage_->Create(path, db->options_.storage));

  // Durably mark the file as mid-load before any structure is built: from
  // here until FinishLoad()'s final commit, a crash makes Open() report an
  // incomplete load instead of serving a partial database.
  db->storage_->set_load_state(page_header::kLoadBuilding);
  PARADISE_RETURN_IF_ERROR(db->storage_->Checkpoint());

  // Persist the logical schema.
  PARADISE_ASSIGN_OR_RETURN(
      ObjectId schema_oid,
      db->storage_->objects()->Create(db->schema_.Serialize()));
  PARADISE_RETURN_IF_ERROR(db->storage_->SetRoot(kSchemaRoot, schema_oid));

  // Empty dimension tables.
  db->dims_.reserve(db->schema_.num_dims());
  for (const DimensionSpec& spec : db->schema_.dims) {
    PARADISE_ASSIGN_OR_RETURN(
        DimensionTable table,
        DimensionTable::Create(db->storage_->pool(), spec.name,
                               spec.ToSchema()));
    PARADISE_RETURN_IF_ERROR(db->storage_->SetRoot(DimRootName(spec.name),
                                                   table.first_page()));
    db->dims_.push_back(std::move(table));
  }

  // Empty fact file.
  PARADISE_ASSIGN_OR_RETURN(
      db->fact_,
      FactFile::Create(db->storage_->pool(), db->storage_->disk(),
                       static_cast<uint32_t>(db->fact_schema_.record_size()),
                       static_cast<uint32_t>(
                           db->options_.storage.pages_per_extent)));
  PARADISE_RETURN_IF_ERROR(
      db->storage_->SetRoot(kFactRoot, db->fact_.meta_page()));
  return db;
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database());
  db->options_ = std::move(options);
  db->storage_ = std::make_unique<StorageManager>();
  PARADISE_RETURN_IF_ERROR(db->storage_->Open(path, db->options_.storage));

  if (db->storage_->load_state() == page_header::kLoadBuilding) {
    return Status::Corruption(
        "incomplete load: database '" + path +
        "' was interrupted before FinishLoad() committed; rebuild it from "
        "the source data");
  }

  // A crash between DiskManager::Create's first commit and Database::Create's
  // mid-load checkpoint leaves a committed-but-empty catalog; treat the
  // missing schema root as the same incomplete-load condition.
  Result<uint64_t> schema_oid_or = db->storage_->GetRoot(kSchemaRoot);
  if (!schema_oid_or.ok() && schema_oid_or.status().IsNotFound()) {
    return Status::Corruption(
        "incomplete load: database '" + path +
        "' has no schema catalog entry; creation was interrupted before the "
        "first commit, rebuild it from the source data");
  }
  PARADISE_ASSIGN_OR_RETURN(uint64_t schema_oid, std::move(schema_oid_or));
  PARADISE_ASSIGN_OR_RETURN(std::string schema_blob,
                            db->storage_->objects()->Read(schema_oid));
  PARADISE_ASSIGN_OR_RETURN(db->schema_,
                            StarSchema::Deserialize(schema_blob));
  db->fact_schema_ = db->schema_.FactSchema();

  for (const DimensionSpec& spec : db->schema_.dims) {
    PARADISE_ASSIGN_OR_RETURN(uint64_t first_page,
                              db->storage_->GetRoot(DimRootName(spec.name)));
    PARADISE_ASSIGN_OR_RETURN(
        DimensionTable table,
        DimensionTable::Open(db->storage_->pool(), spec.name, spec.ToSchema(),
                             first_page));
    db->dims_.push_back(std::move(table));
  }

  PARADISE_ASSIGN_OR_RETURN(uint64_t fact_meta,
                            db->storage_->GetRoot(kFactRoot));
  PARADISE_ASSIGN_OR_RETURN(
      db->fact_, FactFile::Open(db->storage_->pool(), db->storage_->disk(),
                                fact_meta));

  if (db->storage_->HasRoot("olap_array." + db->schema_.cube_name)) {
    PARADISE_ASSIGN_OR_RETURN(
        db->olap_, OlapArray::Open(db->storage_.get(),
                                   db->schema_.cube_name));
    db->has_olap_ = true;
    db->ingest_ = std::make_unique<IngestManager>(db.get());
    if (db->storage_->HasRoot(IngestStateRootName())) {
      PARADISE_RETURN_IF_ERROR(db->ingest_->Recover());
    }
  }

  db->bitmap_indexes_.resize(db->schema_.num_dims());
  db->btree_join_roots_.resize(db->schema_.num_dims());
  for (size_t d = 0; d < db->schema_.num_dims(); ++d) {
    const size_t cols = db->schema_.dims[d].attrs.size();
    db->bitmap_indexes_[d].resize(cols);
    db->btree_join_roots_[d].assign(cols, kInvalidPageId);
    for (size_t col = 1; col < cols; ++col) {
      const std::string root = BitmapRootName(db->schema_.dims[d].name, col);
      if (db->storage_->HasRoot(root)) {
        PARADISE_ASSIGN_OR_RETURN(uint64_t oid, db->storage_->GetRoot(root));
        PARADISE_ASSIGN_OR_RETURN(
            BitmapJoinIndex idx,
            BitmapJoinIndex::Open(db->storage_->objects(), oid));
        db->bitmap_indexes_[d][col] =
            std::make_shared<BitmapJoinIndex>(std::move(idx));
      }
      const std::string jroot =
          JoinIndexRootName(db->schema_.dims[d].name, col);
      if (db->storage_->HasRoot(jroot)) {
        PARADISE_ASSIGN_OR_RETURN(uint64_t page,
                                  db->storage_->GetRoot(jroot));
        db->btree_join_roots_[d][col] = page;
      }
    }
  }
  db->load_finished_ = true;
  return db;
}

Status Database::AppendDimensionRow(size_t d, const Tuple& row) {
  if (facts_begun_) {
    return Status::InvalidArgument(
        "dimensions are frozen after BeginFacts()");
  }
  if (d >= dims_.size()) {
    return Status::InvalidArgument("bad dimension index " + std::to_string(d));
  }
  return dims_[d].Append(row);
}

Status Database::BeginFacts() {
  if (facts_begun_) return Status::InvalidArgument("BeginFacts called twice");
  for (const DimensionTable& dim : dims_) {
    if (dim.num_rows() == 0) {
      return Status::InvalidArgument("dimension '" + dim.name() +
                                     "' is empty; load dimensions first");
    }
  }
  facts_begun_ = true;
  // Commit the frozen dimensions (still marked mid-load) so the fact phase
  // starts from a durable prefix; a crash during it stays a clean
  // incomplete-load at Open().
  PARADISE_RETURN_IF_ERROR(storage_->Checkpoint());
  if (options_.build_array) {
    olap_builder_ = std::make_unique<OlapArray::Builder>(
        storage_.get(), schema_.cube_name, DimPointers(),
        options_.chunk_extents, options_.array, schema_.num_measures());
    PARADISE_RETURN_IF_ERROR(olap_builder_->Init());
  }
  return Status::OK();
}

Status Database::AppendFact(const std::vector<int32_t>& keys,
                            const std::vector<int64_t>& measures) {
  if (!facts_begun_) return Status::InvalidArgument("call BeginFacts() first");
  if (keys.size() != schema_.num_dims()) {
    return Status::InvalidArgument("fact key arity mismatch");
  }
  if (measures.size() != schema_.num_measures()) {
    return Status::InvalidArgument("fact measure arity mismatch: got " +
                                   std::to_string(measures.size()) +
                                   ", expected " +
                                   std::to_string(schema_.num_measures()));
  }
  Tuple t(&fact_schema_);
  for (size_t d = 0; d < keys.size(); ++d) t.SetInt32(d, keys[d]);
  for (size_t m = 0; m < measures.size(); ++m) {
    t.SetInt64(keys.size() + m, measures[m]);
  }
  PARADISE_RETURN_IF_ERROR(fact_.Append(t.bytes()));
  if (olap_builder_ != nullptr) {
    PARADISE_RETURN_IF_ERROR(olap_builder_->PutByKeys(keys, measures));
  }
  return Status::OK();
}

Status Database::FinishLoad() {
  if (!facts_begun_) return Status::InvalidArgument("call BeginFacts() first");
  if (load_finished_) return Status::InvalidArgument("load already finished");
  PARADISE_RETURN_IF_ERROR(fact_.Sync());
  if (olap_builder_ != nullptr) {
    PARADISE_ASSIGN_OR_RETURN(olap_, olap_builder_->Finish());
    has_olap_ = true;
    olap_builder_.reset();
  }
  bitmap_indexes_.resize(schema_.num_dims());
  btree_join_roots_.resize(schema_.num_dims());
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    bitmap_indexes_[d].resize(schema_.dims[d].attrs.size());
    btree_join_roots_[d].assign(schema_.dims[d].attrs.size(), kInvalidPageId);
  }
  if (options_.build_bitmap_indexes) {
    PARADISE_RETURN_IF_ERROR(BuildBitmapIndexes());
  }
  if (options_.build_btree_join_indexes) {
    PARADISE_RETURN_IF_ERROR(BuildBTreeJoinIndexes());
  }
  load_finished_ = true;
  // The commit below publishes the fully built database and clears the
  // mid-load mark in the same atomic manifest write.
  storage_->set_load_state(page_header::kLoadCommitted);
  PARADISE_RETURN_IF_ERROR(storage_->Checkpoint());
  if (has_olap_) ingest_ = std::make_unique<IngestManager>(this);
  return Status::OK();
}

bool Database::ingested() const {
  return ingest_ != nullptr && ingest_->ingested();
}

Database::PinnedArray Database::PinArray() const {
  std::lock_guard<std::mutex> lk(array_pin_mu_);
  return PinnedArray{olap_, commit_epoch()};
}

Status Database::PublishIngest(const std::function<Status()>& publish) {
  std::lock_guard<std::mutex> lk(array_pin_mu_);
  PARADISE_RETURN_IF_ERROR(storage_->Checkpoint());
  return publish();
}

Status Database::BuildBitmapIndexes() {
  // One builder per (dimension, attribute); a single fact scan feeds all.
  std::vector<std::vector<std::unique_ptr<BitmapJoinIndex::Builder>>> builders(
      schema_.num_dims());
  // Per dimension: key -> row, resolved once per fact tuple; per attribute,
  // the normalized value per row.
  std::vector<std::vector<std::vector<int64_t>>> row_values(
      schema_.num_dims());
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    const size_t cols = dims_[d].schema().num_columns();
    builders[d].resize(cols);
    row_values[d].resize(cols);
    for (size_t col = 1; col < cols; ++col) {
      builders[d][col] =
          std::make_unique<BitmapJoinIndex::Builder>(fact_.num_tuples());
      row_values[d][col].resize(dims_[d].num_rows());
      for (uint32_t row = 0; row < dims_[d].num_rows(); ++row) {
        PARADISE_ASSIGN_OR_RETURN(
            row_values[d][col][row],
            dims_[d].NormalizedValue(dims_[d].rows()[row].ref(), col));
      }
    }
  }
  PARADISE_RETURN_IF_ERROR(fact_.ScanAll(
      [&](uint64_t tuple, const char* record) -> Status {
        TupleRef t(&fact_schema_, record);
        for (size_t d = 0; d < schema_.num_dims(); ++d) {
          PARADISE_ASSIGN_OR_RETURN(uint32_t row,
                                    dims_[d].RowOfKey(t.GetInt32(d)));
          for (size_t col = 1; col < builders[d].size(); ++col) {
            builders[d][col]->Add(row_values[d][col][row], tuple);
          }
        }
        return Status::OK();
      }));
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    for (size_t col = 1; col < builders[d].size(); ++col) {
      PARADISE_ASSIGN_OR_RETURN(ObjectId oid,
                                builders[d][col]->Finish(storage_->objects()));
      PARADISE_RETURN_IF_ERROR(storage_->SetRoot(
          BitmapRootName(schema_.dims[d].name, col), oid));
      PARADISE_ASSIGN_OR_RETURN(
          BitmapJoinIndex idx,
          BitmapJoinIndex::Open(storage_->objects(), oid));
      bitmap_indexes_[d][col] =
          std::make_shared<BitmapJoinIndex>(std::move(idx));
    }
  }
  return Status::OK();
}

Status Database::BuildBTreeJoinIndexes() {
  // One B-tree per (dimension, attribute): value -> fact tuple number.
  std::vector<std::vector<BTree>> trees(schema_.num_dims());
  std::vector<std::vector<std::vector<int64_t>>> row_values(
      schema_.num_dims());
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    const size_t cols = dims_[d].schema().num_columns();
    trees[d].resize(cols);
    row_values[d].resize(cols);
    for (size_t col = 1; col < cols; ++col) {
      PARADISE_ASSIGN_OR_RETURN(trees[d][col],
                                BTree::Create(storage_->pool()));
      row_values[d][col].resize(dims_[d].num_rows());
      for (uint32_t row = 0; row < dims_[d].num_rows(); ++row) {
        PARADISE_ASSIGN_OR_RETURN(
            row_values[d][col][row],
            dims_[d].NormalizedValue(dims_[d].rows()[row].ref(), col));
      }
    }
  }
  PARADISE_RETURN_IF_ERROR(fact_.ScanAll(
      [&](uint64_t tuple, const char* record) -> Status {
        TupleRef t(&fact_schema_, record);
        for (size_t d = 0; d < schema_.num_dims(); ++d) {
          PARADISE_ASSIGN_OR_RETURN(uint32_t row,
                                    dims_[d].RowOfKey(t.GetInt32(d)));
          for (size_t col = 1; col < trees[d].size(); ++col) {
            PARADISE_RETURN_IF_ERROR(trees[d][col].Insert(
                row_values[d][col][row], static_cast<int64_t>(tuple)));
          }
        }
        return Status::OK();
      }));
  for (size_t d = 0; d < schema_.num_dims(); ++d) {
    for (size_t col = 1; col < trees[d].size(); ++col) {
      btree_join_roots_[d][col] = trees[d][col].root();
      PARADISE_RETURN_IF_ERROR(storage_->SetRoot(
          JoinIndexRootName(schema_.dims[d].name, col),
          trees[d][col].root()));
    }
  }
  return Status::OK();
}

std::vector<const DimensionTable*> Database::DimPointers() const {
  std::vector<const DimensionTable*> out;
  out.reserve(dims_.size());
  for (const DimensionTable& d : dims_) out.push_back(&d);
  return out;
}

Result<Database::StorageReport> Database::ReportStorage() const {
  StorageReport report;
  report.fact_file_bytes =
      fact_.used_data_pages() * storage_->options().page_size;
  if (has_olap_) {
    for (size_t m = 0; m < olap_.num_measures(); ++m) {
      report.array_data_bytes += olap_.array(m).TotalDataBytes();
      PARADISE_ASSIGN_OR_RETURN(uint64_t pages, olap_.array(m).TotalPages());
      report.array_pages_bytes += pages * storage_->options().page_size;
    }
  }
  for (const auto& per_dim : bitmap_indexes_) {
    for (const auto& idx : per_dim) {
      if (idx == nullptr) continue;
      PARADISE_ASSIGN_OR_RETURN(uint64_t bytes, idx->TotalBitmapBytes());
      report.bitmap_bytes += bytes;
    }
  }
  report.file_bytes = storage_->FileSizeBytes();
  return report;
}

}  // namespace paradise
