#include "schema/demo_cube.h"

#include <cstdio>
#include <utility>

#include "schema/loader.h"

namespace paradise {

gen::GenConfig DemoCubeConfig() {
  gen::GenConfig config;
  config.dims.resize(3);
  const uint32_t sizes[3] = {16, 12, 20};
  for (size_t d = 0; d < 3; ++d) {
    config.dims[d].name = "dim" + std::to_string(d);
    config.dims[d].size = sizes[d];
    config.dims[d].level_cardinalities = {8, 4};
  }
  config.num_valid_cells = 2000;
  config.seed = 1998;  // the paper's year
  config.chunk_extents = {4, 4, 5};
  return config;
}

DatabaseOptions DemoCubeOptions() {
  DatabaseOptions options;
  options.storage.page_size = 4096;
  options.storage.buffer_pool_pages = 256;
  options.storage.pages_per_extent = 8;
  options.storage.allow_overwrite = true;
  return options;
}

Result<std::unique_ptr<Database>> BuildDemoCube(const std::string& path) {
  std::remove(path.c_str());
  PARADISE_ASSIGN_OR_RETURN(
      std::unique_ptr<Database> db,
      BuildDatabaseFromConfig(path, DemoCubeConfig(), DemoCubeOptions()));
  // Flush everything so callers may immediately reopen the file with
  // independent options.
  PARADISE_RETURN_IF_ERROR(db->DropCaches());
  return db;
}

}  // namespace paradise
