// The demo cube: one small synthetic database shared by every tool that
// needs a ready-made cube (`dbstats --make-demo`, `olapd --make-demo`, the
// CI smoke steps and bench_server's default dataset), so they all build the
// exact same file instead of each carrying its own copy of the config.
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "gen/generator.h"
#include "schema/database.h"

namespace paradise {

/// A deliberately small cube (3 dims of 16x12x20, two hierarchy levels
/// each, ~2000 valid cells) so a CI smoke step builds, queries and traces
/// it in well under a second.
gen::GenConfig DemoCubeConfig();

/// The storage options the demo cube is built with (4 KiB pages, small
/// pool/extents).
DatabaseOptions DemoCubeOptions();

/// Builds (overwriting) the demo cube at `path` and returns it open with
/// every page flushed, so callers may immediately reopen the file with
/// independent options. Removes any existing file first.
Result<std::unique_ptr<Database>> BuildDemoCube(const std::string& path);

}  // namespace paradise
