// Loader: materializes a generated synthetic data set as a complete
// database — dimension tables, fact file, OLAP Array ADT, bitmap indexes —
// the way the paper derives the table representation from the array
// representation (§5.4: one tuple per valid cell).
#pragma once

#include <memory>
#include <string>

#include "common/result.h"
#include "gen/generator.h"
#include "schema/database.h"

namespace paradise {

/// Builds a database at `path` from `data`. If options.chunk_extents is
/// empty, the data set's chunk extents are used.
Result<std::unique_ptr<Database>> BuildDatabaseFromDataset(
    const std::string& path, const gen::SyntheticDataset& data,
    DatabaseOptions options);

/// Convenience: generate + build in one step.
Result<std::unique_ptr<Database>> BuildDatabaseFromConfig(
    const std::string& path, const gen::GenConfig& config,
    DatabaseOptions options);

}  // namespace paradise
