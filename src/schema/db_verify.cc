#include "schema/db_verify.h"

#include <map>
#include <unordered_set>
#include <utility>

#include "ingest/delta_store.h"
#include "ingest/ingest.h"
#include "storage/disk_manager.h"
#include "storage/storage_manager.h"

namespace paradise {

std::vector<std::string> VerifyReport::AllIssues() const {
  std::vector<std::string> all = scrub.issues;
  all.insert(all.end(), issues.begin(), issues.end());
  return all;
}

Result<VerifyReport> VerifyDatabase(const std::string& path,
                                    DatabaseOptions options) {
  options.storage.read_only = true;
  options.storage.allow_overwrite = false;
  VerifyReport report;

  // Stage 1: storage-level scrub (page checksums, free list, manifest
  // invariants) plus catalog bounds. A file that will not even open at this
  // level is itself a finding, not a tool failure.
  {
    StorageManager storage;
    Status st = storage.Open(path, options.storage);
    if (!st.ok()) {
      report.issues.push_back("storage open failed: " + st.ToString());
      return report;
    }
    PARADISE_RETURN_IF_ERROR(ScrubStorage(&storage, &report.scrub));
    report.page_count = storage.disk()->page_count();
    report.catalog_entries = storage.catalog().size();
    const PageId first_user =
        page_header::FirstUserPage(storage.disk()->format_version());
    // Every catalog root is a PageId or ObjectId (the PageId of an object
    // header), so all of them must land inside the file's user area.
    for (const auto& [name, value] : storage.catalog()) {
      if (value < first_user || value >= report.page_count) {
        report.issues.push_back("catalog entry '" + name +
                                "' points to page " + std::to_string(value) +
                                " outside the file");
      }
    }
    PARADISE_RETURN_IF_ERROR(storage.Close());
  }

  // Stage 2: open the full database (read-only) and cross-check the fact
  // file's extent map against the free list and reserved pages.
  Result<std::unique_ptr<Database>> db_or = Database::Open(path, options);
  if (!db_or.ok()) {
    report.issues.push_back("database open failed: " +
                            db_or.status().ToString());
    return report;
  }
  Database* db = db_or.value().get();
  const uint64_t page_count = db->storage()->disk()->page_count();
  const PageId first_user =
      page_header::FirstUserPage(db->storage()->disk()->format_version());

  std::map<PageId, std::string> claims;
  auto claim = [&](PageId id, const std::string& what) {
    if (id < first_user || id >= page_count) {
      report.issues.push_back(what + " page " + std::to_string(id) +
                              " lies outside the file");
      return;
    }
    auto [it, fresh] = claims.emplace(id, what);
    if (!fresh) {
      report.issues.push_back("page " + std::to_string(id) +
                              " claimed by both " + it->second + " and " +
                              what);
    }
  };

  const ExtentAllocator& extents = db->fact()->extent_allocator();
  claim(db->fact()->meta_page(), "fact meta");
  for (PageId dir : extents.directory_pages()) {
    claim(dir, "fact extent directory");
  }
  const uint32_t per_extent = extents.pages_per_extent();
  for (size_t k = 0; k < extents.extent_firsts().size(); ++k) {
    const PageId first = extents.extent_firsts()[k];
    for (uint32_t i = 0; i < per_extent; ++i) {
      claim(first + i, "fact extent " + std::to_string(k));
    }
  }

  // No page may be both structurally owned and on the free list — that is
  // how a double free (or a stale free list from a lost commit) shows up.
  for (PageId free_page : report.scrub.free_pages) {
    auto it = claims.find(free_page);
    if (it != claims.end()) {
      report.issues.push_back("page " + std::to_string(free_page) +
                              " is on the free list but owned by " +
                              it->second);
    }
  }

  // Every fact tuple must be reachable through the extent map and
  // checksum-clean.
  uint64_t tuples = 0;
  Status scan = db->fact()->ScanAll(
      [&](uint64_t, const char*) {
        ++tuples;
        return Status::OK();
      });
  if (!scan.ok()) {
    report.issues.push_back("fact scan failed: " + scan.ToString());
  }
  report.fact_tuples = tuples;

  // Stage 2b: per-chunk codec validation. Database::Open only reads the
  // array's directory, so a chunk whose serialized codec is damaged —
  // an unknown tag byte, a truncated diff-sequence stream, out-of-order or
  // out-of-bounds offsets — would otherwise surface only mid-query. Every
  // non-empty chunk must parse as a view (header + exact stream sizes) and
  // deep-decode cleanly (Chunk::Deserialize re-validates strict offset
  // order and capacity bounds cell by cell). Chunks with overlay deltas are
  // validated through the same merged-read path queries use.
  if (db->has_olap()) {
    const ChunkLayout& layout = db->olap()->layout();
    for (size_t m = 0; m < db->olap()->num_measures(); ++m) {
      const ChunkedArray& array = db->olap()->array(m);
      const auto overlay = array.overlay();
      for (uint64_t c = 0; c < layout.num_chunks(); ++c) {
        if (array.ChunkIsEmpty(c)) continue;
        const std::string where = "measure " + std::to_string(m) + " chunk " +
                                  std::to_string(c);
        Result<std::string> blob = array.ReadChunkBlob(c);
        if (!blob.ok()) {
          report.issues.push_back(where + " unreadable: " +
                                  blob.status().ToString());
          continue;
        }
        if (blob->empty()) continue;
        Result<Chunk> chunk = Chunk::Deserialize(*blob);
        if (!chunk.ok()) {
          report.issues.push_back(where + " codec rejected: " +
                                  chunk.status().ToString());
          continue;
        }
        if (chunk->capacity() != layout.ChunkCellCount(c)) {
          report.issues.push_back(
              where + " stores capacity " + std::to_string(chunk->capacity()) +
              " but the layout says " +
              std::to_string(layout.ChunkCellCount(c)));
          continue;
        }
        // Directory valid-count cross-check; only exact without deltas.
        if (overlay == nullptr || overlay->Find(c) == nullptr) {
          const uint32_t listed = array.ChunkValidCount(c);
          if (chunk->num_valid() != listed) {
            report.issues.push_back(
                where + " decodes " + std::to_string(chunk->num_valid()) +
                " cells but the directory lists " + std::to_string(listed));
            continue;
          }
        }
        ++report.chunks_verified;
      }
    }
  }

  // Stage 3: ingest state. The "ingest.state" object must parse, every
  // generation it lists must have a matching catalog root and a decodable
  // delta blob whose cells land inside the array, and no orphan
  // "ingest.delta.*" root may exist outside the state's list (the commit
  // protocol publishes both in one checkpoint, so a committed catalog can
  // never disagree with itself).
  if (db->storage()->HasRoot(IngestStateRootName())) {
    do {
      Result<uint64_t> state_oid = db->storage()->GetRoot(IngestStateRootName());
      if (!state_oid.ok()) {
        report.issues.push_back("ingest state root unreadable: " +
                                state_oid.status().ToString());
        break;
      }
      Result<std::string> blob = db->storage()->objects()->Read(*state_oid);
      if (!blob.ok()) {
        report.issues.push_back("ingest state object unreadable: " +
                                blob.status().ToString());
        break;
      }
      uint64_t applied = 0;
      uint64_t next_seq = 0;
      std::vector<std::pair<uint64_t, ObjectId>> gens;
      Status parsed = ParseIngestState(*blob, &applied, &next_seq, &gens);
      if (!parsed.ok()) {
        report.issues.push_back("ingest state rejected: " + parsed.ToString());
        break;
      }
      report.ingest_applied_cells = applied;
      report.ingest_generations = gens.size();
      std::unordered_set<uint64_t> listed;
      for (const auto& [seq, oid] : gens) {
        listed.insert(seq);
        if (seq >= next_seq) {
          report.issues.push_back("ingest generation " + std::to_string(seq) +
                                  " is at or beyond next sequence " +
                                  std::to_string(next_seq));
        }
        const std::string root = IngestGenerationRootName(seq);
        Result<uint64_t> root_oid = db->storage()->GetRoot(root);
        if (!root_oid.ok()) {
          report.issues.push_back("ingest state lists generation " +
                                  std::to_string(seq) +
                                  " but catalog root '" + root +
                                  "' is missing");
        } else if (*root_oid != oid) {
          report.issues.push_back(
              "ingest generation " + std::to_string(seq) + " root points at " +
              std::to_string(*root_oid) + " but the state lists " +
              std::to_string(oid));
        }
        Result<std::string> gen_blob = db->storage()->objects()->Read(oid);
        if (!gen_blob.ok()) {
          report.issues.push_back("ingest generation " + std::to_string(seq) +
                                  " object unreadable: " +
                                  gen_blob.status().ToString());
          continue;
        }
        Result<DeltaGeneration> gen = DeltaGeneration::Deserialize(*gen_blob);
        if (!gen.ok()) {
          report.issues.push_back("ingest generation " + std::to_string(seq) +
                                  " rejected: " + gen.status().ToString());
          continue;
        }
        if (gen->seq != seq) {
          report.issues.push_back("ingest generation " + std::to_string(seq) +
                                  " carries sequence " +
                                  std::to_string(gen->seq));
        }
        if (db->has_olap()) {
          const ChunkLayout& layout = db->olap()->layout();
          if (gen->measures.size() != db->olap()->num_measures()) {
            report.issues.push_back(
                "ingest generation " + std::to_string(seq) + " has " +
                std::to_string(gen->measures.size()) + " measures, array has " +
                std::to_string(db->olap()->num_measures()));
          }
          for (const auto& chunks : gen->measures) {
            for (const auto& [chunk_no, cells] : chunks) {
              if (chunk_no >= layout.num_chunks()) {
                report.issues.push_back(
                    "ingest generation " + std::to_string(seq) +
                    " touches chunk " + std::to_string(chunk_no) +
                    " beyond the array's " +
                    std::to_string(layout.num_chunks()) + " chunks");
                continue;
              }
              const uint32_t capacity = layout.ChunkCellCount(chunk_no);
              for (const ChunkEntry& e : cells) {
                if (e.offset >= capacity) {
                  report.issues.push_back(
                      "ingest generation " + std::to_string(seq) + " chunk " +
                      std::to_string(chunk_no) + " writes offset " +
                      std::to_string(e.offset) + " beyond capacity " +
                      std::to_string(capacity));
                }
              }
              report.ingest_overlay_cells += cells.size();
            }
          }
        }
      }
      for (const auto& [name, value] : db->storage()->catalog()) {
        uint64_t seq = 0;
        if (IsIngestGenerationRoot(name, &seq) && !listed.contains(seq)) {
          report.issues.push_back("catalog root '" + name +
                                  "' is not listed in the ingest state");
        }
      }
    } while (false);
  } else {
    // No state root: any generation root is an orphan.
    for (const auto& [name, value] : db->storage()->catalog()) {
      if (IsIngestGenerationRoot(name, nullptr)) {
        report.issues.push_back("catalog root '" + name +
                                "' has no ingest state");
      }
    }
  }
  return report;
}

Result<VerifyReport> VerifyDatabaseFile(const std::string& path) {
  Result<StorageOptions> storage_or = ProbeStorageOptions(path);
  if (!storage_or.ok()) {
    // A recognizable paradise header carrying a page-format version newer
    // than kMaxSupportedFormat (NotSupported) is itself a finding: dbverify
    // reports the typed rejection instead of ever opening a file it might
    // misread. Anything else — missing file, truncation, wrong magic — is
    // not a paradise database at all, so the tool fails rather than report.
    if (storage_or.status().IsNotSupported()) {
      VerifyReport report;
      report.issues.push_back("file header rejected: " +
                              storage_or.status().ToString());
      return report;
    }
    return storage_or.status();
  }
  DatabaseOptions options;
  options.storage = std::move(storage_or).value();
  return VerifyDatabase(path, options);
}

}  // namespace paradise
