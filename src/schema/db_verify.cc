#include "schema/db_verify.h"

#include <map>
#include <unordered_set>
#include <utility>

#include "storage/disk_manager.h"
#include "storage/storage_manager.h"

namespace paradise {

std::vector<std::string> VerifyReport::AllIssues() const {
  std::vector<std::string> all = scrub.issues;
  all.insert(all.end(), issues.begin(), issues.end());
  return all;
}

Result<VerifyReport> VerifyDatabase(const std::string& path,
                                    DatabaseOptions options) {
  options.storage.read_only = true;
  options.storage.allow_overwrite = false;
  VerifyReport report;

  // Stage 1: storage-level scrub (page checksums, free list, manifest
  // invariants) plus catalog bounds. A file that will not even open at this
  // level is itself a finding, not a tool failure.
  {
    StorageManager storage;
    Status st = storage.Open(path, options.storage);
    if (!st.ok()) {
      report.issues.push_back("storage open failed: " + st.ToString());
      return report;
    }
    PARADISE_RETURN_IF_ERROR(ScrubStorage(&storage, &report.scrub));
    report.page_count = storage.disk()->page_count();
    report.catalog_entries = storage.catalog().size();
    const PageId first_user =
        page_header::FirstUserPage(storage.disk()->format_version());
    // Every catalog root is a PageId or ObjectId (the PageId of an object
    // header), so all of them must land inside the file's user area.
    for (const auto& [name, value] : storage.catalog()) {
      if (value < first_user || value >= report.page_count) {
        report.issues.push_back("catalog entry '" + name +
                                "' points to page " + std::to_string(value) +
                                " outside the file");
      }
    }
    PARADISE_RETURN_IF_ERROR(storage.Close());
  }

  // Stage 2: open the full database (read-only) and cross-check the fact
  // file's extent map against the free list and reserved pages.
  Result<std::unique_ptr<Database>> db_or = Database::Open(path, options);
  if (!db_or.ok()) {
    report.issues.push_back("database open failed: " +
                            db_or.status().ToString());
    return report;
  }
  Database* db = db_or.value().get();
  const uint64_t page_count = db->storage()->disk()->page_count();
  const PageId first_user =
      page_header::FirstUserPage(db->storage()->disk()->format_version());

  std::map<PageId, std::string> claims;
  auto claim = [&](PageId id, const std::string& what) {
    if (id < first_user || id >= page_count) {
      report.issues.push_back(what + " page " + std::to_string(id) +
                              " lies outside the file");
      return;
    }
    auto [it, fresh] = claims.emplace(id, what);
    if (!fresh) {
      report.issues.push_back("page " + std::to_string(id) +
                              " claimed by both " + it->second + " and " +
                              what);
    }
  };

  const ExtentAllocator& extents = db->fact()->extent_allocator();
  claim(db->fact()->meta_page(), "fact meta");
  for (PageId dir : extents.directory_pages()) {
    claim(dir, "fact extent directory");
  }
  const uint32_t per_extent = extents.pages_per_extent();
  for (size_t k = 0; k < extents.extent_firsts().size(); ++k) {
    const PageId first = extents.extent_firsts()[k];
    for (uint32_t i = 0; i < per_extent; ++i) {
      claim(first + i, "fact extent " + std::to_string(k));
    }
  }

  // No page may be both structurally owned and on the free list — that is
  // how a double free (or a stale free list from a lost commit) shows up.
  for (PageId free_page : report.scrub.free_pages) {
    auto it = claims.find(free_page);
    if (it != claims.end()) {
      report.issues.push_back("page " + std::to_string(free_page) +
                              " is on the free list but owned by " +
                              it->second);
    }
  }

  // Every fact tuple must be reachable through the extent map and
  // checksum-clean.
  uint64_t tuples = 0;
  Status scan = db->fact()->ScanAll(
      [&](uint64_t, const char*) {
        ++tuples;
        return Status::OK();
      });
  if (!scan.ok()) {
    report.issues.push_back("fact scan failed: " + scan.ToString());
  }
  report.fact_tuples = tuples;
  return report;
}

Result<VerifyReport> VerifyDatabaseFile(const std::string& path) {
  PARADISE_ASSIGN_OR_RETURN(StorageOptions storage, ProbeStorageOptions(path));
  DatabaseOptions options;
  options.storage = storage;
  return VerifyDatabase(path, options);
}

}  // namespace paradise
