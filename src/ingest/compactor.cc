// Compaction: folds every committed delta generation into a copy-on-write
// rewrite of the OLAP array's packed chunk objects and retires the
// generations. The write amplification happens entirely off the read path:
// per-chunk merges fan out on the storage IoPool, the current array
// versions stay untouched until one pointer swap, and pinned readers keep
// the pre-compaction objects alive through the graveyard until their
// version refcounts drain.
#include <optional>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "ingest/ingest.h"
#include "storage/io_pool.h"

namespace paradise {

Status IngestManager::Compact(const CancellationToken* cancel) {
  std::lock_guard<std::mutex> lk(mu_);
  if (live_.empty()) return Status::OK();
  StorageManager* storage = db_->storage();
  OlapArray* olap = db_->olap();
  std::vector<std::shared_ptr<const DeltaOverlay>> overlays =
      BuildLiveOverlays();

  // 1. Prepare one copy-on-write compaction per overlay-bearing measure.
  //    This is the heavy phase (read base + merge + write new objects) and
  //    runs outside the pin lock — readers are completely unaffected.
  //    Cancellation or failure frees the new objects (never referenced by
  //    any catalog root yet) and leaves the generations fully servable.
  std::vector<std::optional<ChunkedArray::Compaction>> comps(num_measures_);
  uint64_t merged_chunks = 0;
  auto abandon = [&]() {
    for (const auto& c : comps) {
      if (!c.has_value()) continue;
      FreeBestEffort(c->new_data_oid);
      FreeBestEffort(c->new_meta_oid);
    }
  };
  for (size_t m = 0; m < num_measures_; ++m) {
    if (overlays[m] == nullptr || overlays[m]->empty()) continue;
    Result<ChunkedArray::Compaction> comp_or =
        olap->mutable_array(m)->PrepareCompaction(*overlays[m],
                                                  storage->io_pool(), cancel);
    if (!comp_or.ok()) {
      abandon();
      if (comp_or.status().IsCancelled() ||
          comp_or.status().IsDeadlineExceeded()) {
        ++compactions_cancelled_;
        if (metric_compactions_cancelled_ != nullptr) {
          metric_compactions_cancelled_->Increment();
        }
      }
      return comp_or.status();
    }
    merged_chunks += comp_or.value().merged_chunks;
    comps[m] = std::move(comp_or).value();
  }

  // 2. Swap the compacted versions in. The merged content is cell-for-cell
  //    identical to base+overlay, so readers that pin between here and the
  //    checkpoint still compute exactly the current epoch's results.
  for (size_t m = 0; m < num_measures_; ++m) {
    if (comps[m].has_value()) {
      olap->mutable_array(m)->PublishCompaction(*comps[m]);
    }
  }

  // 3. Catalog turnover, all copy-on-write: republish the ADT meta (it
  //    embeds the arrays' meta oids), drop the generation roots, and write
  //    the emptied state object. Recovery sees either all of it (after the
  //    checkpoint) or none of it (before).
  PARADISE_ASSIGN_OR_RETURN(ObjectId old_olap_meta, olap->PublishMeta());
  for (const LiveGeneration& g : live_) {
    PARADISE_RETURN_IF_ERROR(
        storage->RemoveRoot(IngestGenerationRootName(g.seq)));
  }
  PARADISE_ASSIGN_OR_RETURN(
      ObjectId new_state,
      storage->objects()->Create(
          SerializeState(applied_cells_, next_seq_, {})));
  PARADISE_RETURN_IF_ERROR(storage->SetRoot(IngestStateRootName(), new_state));

  // 4. Commit point. The arrays already serve the compacted (equivalent)
  //    content; the checkpoint makes the turnover durable and bumps the
  //    epoch under the pin lock.
  PARADISE_RETURN_IF_ERROR(db_->PublishIngest([] { return Status::OK(); }));

  // 5. Post-commit reclamation. Generation and state objects have no
  //    readers (overlays hold copies in memory); the old array objects may
  //    still back pinned query snapshots, so they wait in the graveyard
  //    until their version refcounts show no reader can reach them.
  const ObjectId old_state = state_oid_;
  state_oid_ = new_state;
  for (const LiveGeneration& g : live_) FreeBestEffort(g.oid);
  live_.clear();
  if (old_state != kInvalidObjectId) FreeBestEffort(old_state);
  FreeBestEffort(old_olap_meta);
  Retired retired;
  for (auto& c : comps) {
    if (c.has_value()) retired.measures.push_back(std::move(*c));
  }
  if (!retired.measures.empty()) graveyard_.push_back(std::move(retired));
  ++compactions_;
  if (metric_compactions_ != nullptr) metric_compactions_->Increment();
  if (metric_compacted_chunks_ != nullptr) {
    metric_compacted_chunks_->Increment(merged_chunks);
  }
  return ReclaimRetiredLocked();
}

Status IngestManager::ReclaimRetired() {
  std::lock_guard<std::mutex> lk(mu_);
  return ReclaimRetiredLocked();
}

Status IngestManager::ReclaimRetiredLocked() {
  std::vector<Retired> still_pinned;
  for (Retired& r : graveyard_) {
    bool retirable = true;
    for (const ChunkedArray::Compaction& c : r.measures) {
      if (!ChunkedArray::CompactionRetirable(c)) {
        retirable = false;
        break;
      }
    }
    if (!retirable) {
      still_pinned.push_back(std::move(r));
      continue;
    }
    for (const ChunkedArray::Compaction& c : r.measures) {
      FreeBestEffort(c.old_data_oid);
      FreeBestEffort(c.old_meta_oid);
      if (metric_retired_freed_ != nullptr) {
        metric_retired_freed_->Increment(2);
      }
    }
  }
  graveyard_ = std::move(still_pinned);
  return Status::OK();
}

}  // namespace paradise
