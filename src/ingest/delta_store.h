// Delta generations: the durable unit of incremental ingest. Each Commit()
// freezes the writer's buffered cells into one DeltaGeneration, spills it to
// a single storage object ("PDLT" blob) registered under the
// "ingest.delta.<seq>" catalog root, and records it in the "ingest.state"
// object. Readers never touch generations directly: committed generations
// fold, in sequence order, into one immutable DeltaOverlay per measure
// (BuildOverlays), which ChunkedArray consults in its decode path.
//
// Crash contract: generation and state objects are only ever created fresh
// and published through new catalog roots (copy-on-write all the way down),
// so any crash before the next checkpoint recovers to the previous commit
// epoch with the previous generation set intact.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "array/chunk.h"
#include "array/delta_overlay.h"
#include "common/result.h"
#include "common/status.h"

namespace paradise {

/// One committed batch of ingest writes. Per measure, per chunk, the
/// (offsetInChunk, value) upserts in arrival order — later entries at the
/// same offset win when the generation folds into an overlay.
struct DeltaGeneration {
  uint64_t seq = 0;
  /// measures[m] maps chunk number -> upserts for that chunk.
  std::vector<std::map<uint64_t, std::vector<ChunkEntry>>> measures;

  explicit DeltaGeneration(size_t num_measures = 0) : measures(num_measures) {}

  uint64_t total_cells() const;
  bool empty() const { return total_cells() == 0; }

  /// "PDLT" blob: magic, version, seq, measure count, then per measure the
  /// chunk count and per chunk (chunk_no, cell count, cells).
  std::string Serialize() const;
  static Result<DeltaGeneration> Deserialize(std::string_view blob);
};

/// Folds `generations` (already in commit order) into one immutable overlay
/// per measure. Entry m is null when measure m has no deltas at all, so
/// overlay-free measures keep the no-overlay fast path.
std::vector<std::shared_ptr<const DeltaOverlay>> BuildOverlays(
    size_t num_measures, const std::vector<const DeltaGeneration*>& generations);

}  // namespace paradise
