// IngestManager: the incremental write path of a loaded database
// (DESIGN.md choice 15). Writes buffer in memory keyed by (measure, chunk,
// offsetInChunk); Commit() spills the buffered generation copy-on-write,
// publishes a new commit epoch through the dual-slot manifest, and swaps
// fresh DeltaOverlays into the OLAP array's measure arrays so the newest
// epoch serves the merged data immediately — before any compaction runs.
// Compact() merges every committed generation into a copy-on-write rewrite
// of the packed chunk arrays (per-chunk merge work fans out on the IoPool,
// cancellation-aware), republishes the ADT meta, drops the generation
// roots, and bumps the epoch again.
//
// Concurrency: one mutex serializes Write/Commit/Compact/ReclaimRetired
// against each other. Readers are never blocked by any of them — queries
// pin an (epoch, array-version) snapshot via Database::PinArray() and run
// entirely against immutable state; only the brief checkpoint+swap inside
// Database::PublishIngest() excludes new pins.
//
// Crash safety: every durable mutation is copy-on-write (new objects, new
// catalog roots) published solely by the Checkpoint() manifest commit, so a
// crash at ANY point recovers to the previous epoch. Objects superseded by
// a commit are freed only AFTER the checkpoint that unreferences them
// (crash mid-free leaks pages, which dbverify tolerates — only double
// claims are findings). Objects a pinned in-process reader may still read
// (the pre-compaction array versions) go to a graveyard and are freed once
// their version refcount shows no reader can reach them.
//
// Scope: ingest targets the OLAP array only and requires existing dimension
// keys. The relational fact file is NOT maintained, so once any ingest
// commit lands the relational engines are permanently gated off with a
// typed error (see query/engine.cc) — the array is the paper's protagonist.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "array/chunked_array.h"
#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "ingest/delta_store.h"
#include "schema/database.h"

namespace paradise {

class Counter;

class IngestManager {
 public:
  /// `db` must outlive the manager (the Database owns it).
  explicit IngestManager(Database* db);

  /// Buffers one cell write per measure, addressed by one existing key per
  /// dimension. Unknown keys are rejected (ingest never grows dimensions).
  Status Write(const std::vector<int32_t>& keys,
               const std::vector<int64_t>& measures);

  /// Makes every buffered write durable and visible: spills the pending
  /// generation, advances the commit epoch, and publishes rebuilt overlays.
  /// No-op when nothing is buffered.
  Status Commit();

  /// Merges all committed generations into the packed arrays copy-on-write
  /// and retires them. Readers keep their pinned versions untouched.
  /// `cancel` (optional) is polled per chunk; a fired token aborts with the
  /// token's typed status, leaving the generations intact and servable.
  Status Compact(const CancellationToken* cancel = nullptr);

  /// Open-time recovery: loads the persisted ingest state and committed
  /// generations and republishes their overlays. Called by Database::Open.
  Status Recover();

  /// Frees retired pre-compaction array objects whose versions no reader
  /// can reach anymore. Runs opportunistically after Commit/Compact; call
  /// directly to reclaim eagerly (e.g. before measuring file size).
  Status ReclaimRetired();

  /// True once any ingest commit ever landed — the relational fact file is
  /// stale from then on and the relational engines are gated off.
  bool ingested() const;

  struct Stats {
    uint64_t pending_cells = 0;        // buffered, not yet committed
    uint64_t applied_cells = 0;        // lifetime committed cells (persisted)
    uint64_t live_generations = 0;     // committed, not yet compacted
    uint64_t overlay_cells = 0;        // cells currently served via overlays
    uint64_t commits = 0;              // this process
    uint64_t compactions = 0;          // this process
    uint64_t compactions_cancelled = 0;
    uint64_t retired_pending = 0;      // graveyard entries awaiting reclaim
  };
  Stats stats() const;

  uint64_t pending_cells() const;
  uint64_t applied_cells() const;

 private:
  struct LiveGeneration {
    uint64_t seq = 0;
    ObjectId oid = kInvalidObjectId;
    DeltaGeneration gen;
  };
  /// One compaction's superseded storage, freed once unreferenced.
  struct Retired {
    std::vector<ChunkedArray::Compaction> measures;
  };

  std::string SerializeState(uint64_t applied, uint64_t next_seq,
                             const std::vector<LiveGeneration>& live) const;
  Status ParseState(const std::string& blob, uint64_t* applied,
                    uint64_t* next_seq,
                    std::vector<std::pair<uint64_t, ObjectId>>* gens) const;

  std::vector<std::shared_ptr<const DeltaOverlay>> BuildLiveOverlays() const;
  Status ReclaimRetiredLocked();
  void FreeBestEffort(ObjectId oid);

  Database* db_;
  size_t num_measures_;

  mutable std::mutex mu_;  // serializes writers; readers never take it
  DeltaGeneration pending_;
  std::vector<LiveGeneration> live_;
  uint64_t next_seq_ = 1;
  uint64_t applied_cells_ = 0;
  ObjectId state_oid_ = kInvalidObjectId;
  std::vector<Retired> graveyard_;

  uint64_t commits_ = 0;
  uint64_t compactions_ = 0;
  uint64_t compactions_cancelled_ = 0;

  // Null when StorageOptions::metrics_enabled is off.
  Counter* metric_writes_ = nullptr;
  Counter* metric_commits_ = nullptr;
  Counter* metric_committed_cells_ = nullptr;
  Counter* metric_compactions_ = nullptr;
  Counter* metric_compactions_cancelled_ = nullptr;
  Counter* metric_compacted_chunks_ = nullptr;
  Counter* metric_retired_freed_ = nullptr;
};

/// Catalog root names (shared with db_verify and the tools).
std::string IngestStateRootName();
std::string IngestGenerationRootName(uint64_t seq);
bool IsIngestGenerationRoot(const std::string& root_name, uint64_t* seq);

/// Parses a persisted "ingest.state" object. Typed errors: Corruption for a
/// malformed blob, NotSupported for a version newer than this build writes.
/// Shared with dbverify so it can cross-check the state against the catalog
/// without instantiating an IngestManager.
Status ParseIngestState(const std::string& blob, uint64_t* applied,
                        uint64_t* next_seq,
                        std::vector<std::pair<uint64_t, ObjectId>>* gens);

}  // namespace paradise
