#include "ingest/delta_store.h"

#include <cstring>

#include "common/coding.h"

namespace paradise {

namespace {
constexpr char kMagic[4] = {'P', 'D', 'L', 'T'};
constexpr uint8_t kVersion = 1;
}  // namespace

uint64_t DeltaGeneration::total_cells() const {
  uint64_t n = 0;
  for (const auto& per_chunk : measures) {
    for (const auto& [chunk_no, cells] : per_chunk) n += cells.size();
  }
  return n;
}

std::string DeltaGeneration::Serialize() const {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(kVersion));
  AppendFixed64(&out, seq);
  AppendFixed32(&out, static_cast<uint32_t>(measures.size()));
  for (const auto& per_chunk : measures) {
    AppendFixed32(&out, static_cast<uint32_t>(per_chunk.size()));
    for (const auto& [chunk_no, cells] : per_chunk) {
      AppendFixed64(&out, chunk_no);
      AppendFixed32(&out, static_cast<uint32_t>(cells.size()));
      for (const ChunkEntry& e : cells) {
        AppendFixed32(&out, e.offset);
        AppendFixed64(&out, static_cast<uint64_t>(e.value));
      }
    }
  }
  return out;
}

Result<DeltaGeneration> DeltaGeneration::Deserialize(std::string_view blob) {
  const char* p = blob.data();
  const char* end = blob.data() + blob.size();
  auto need = [&](size_t n) { return p + n <= end; };
  if (!need(17) || std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("object is not a delta generation");
  }
  const uint8_t version = static_cast<uint8_t>(p[4]);
  if (version != kVersion) {
    return Status::NotSupported("delta generation version " +
                                std::to_string(version) +
                                " is newer than this build supports (max " +
                                std::to_string(kVersion) + ")");
  }
  DeltaGeneration gen;
  gen.seq = DecodeFixed64(p + 5);
  const uint32_t num_measures = DecodeFixed32(p + 13);
  p += 17;
  gen.measures.resize(num_measures);
  for (uint32_t m = 0; m < num_measures; ++m) {
    if (!need(4)) return Status::Corruption("delta generation truncated");
    const uint32_t num_chunks = DecodeFixed32(p);
    p += 4;
    for (uint32_t c = 0; c < num_chunks; ++c) {
      if (!need(12)) return Status::Corruption("delta generation truncated");
      const uint64_t chunk_no = DecodeFixed64(p);
      const uint32_t count = DecodeFixed32(p + 8);
      p += 12;
      if (!need(static_cast<size_t>(count) * 12)) {
        return Status::Corruption("delta generation truncated");
      }
      std::vector<ChunkEntry>& cells = gen.measures[m][chunk_no];
      cells.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        ChunkEntry e;
        e.offset = DecodeFixed32(p);
        e.value = static_cast<int64_t>(DecodeFixed64(p + 4));
        p += 12;
        cells.push_back(e);
      }
    }
  }
  if (p != end) {
    return Status::Corruption("delta generation has trailing bytes");
  }
  return gen;
}

std::vector<std::shared_ptr<const DeltaOverlay>> BuildOverlays(
    size_t num_measures,
    const std::vector<const DeltaGeneration*>& generations) {
  std::vector<std::shared_ptr<DeltaOverlay>> building(num_measures);
  for (const DeltaGeneration* gen : generations) {
    for (size_t m = 0; m < gen->measures.size() && m < num_measures; ++m) {
      for (const auto& [chunk_no, cells] : gen->measures[m]) {
        if (cells.empty()) continue;
        if (building[m] == nullptr) {
          building[m] = std::make_shared<DeltaOverlay>();
        }
        building[m]->Apply(chunk_no, cells);
      }
    }
  }
  std::vector<std::shared_ptr<const DeltaOverlay>> out(num_measures);
  for (size_t m = 0; m < num_measures; ++m) out[m] = std::move(building[m]);
  return out;
}

}  // namespace paradise
