#include "ingest/ingest.h"

#include <cstring>
#include <utility>

#include "common/coding.h"
#include "common/metrics.h"

namespace paradise {

namespace {
// "ingest.state" object layout:
//   [0,4)  magic "PIST"
//   [4]    version byte (1)
//   [5,13)  lifetime applied cell count
//   [13,21) next generation sequence number
//   [21,25) live generation count
//   per live generation: fixed64 seq + fixed64 object id
constexpr char kStateMagic[4] = {'P', 'I', 'S', 'T'};
constexpr uint8_t kStateVersion = 1;
constexpr char kStateRoot[] = "ingest.state";
constexpr char kGenRootPrefix[] = "ingest.delta.";
}  // namespace

std::string IngestStateRootName() { return kStateRoot; }

std::string IngestGenerationRootName(uint64_t seq) {
  return kGenRootPrefix + std::to_string(seq);
}

bool IsIngestGenerationRoot(const std::string& root_name, uint64_t* seq) {
  const size_t prefix_len = sizeof(kGenRootPrefix) - 1;
  if (root_name.compare(0, prefix_len, kGenRootPrefix) != 0) return false;
  if (root_name.size() == prefix_len) return false;
  uint64_t value = 0;
  for (size_t i = prefix_len; i < root_name.size(); ++i) {
    const char c = root_name[i];
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  if (seq != nullptr) *seq = value;
  return true;
}

IngestManager::IngestManager(Database* db)
    : db_(db),
      num_measures_(db->has_olap() ? db->olap()->num_measures() : 0),
      pending_(num_measures_) {
  if (db_->storage()->options().metrics_enabled) {
    MetricsRegistry& reg = MetricsRegistry::Default();
    metric_writes_ = reg.GetCounter("ingest.writes");
    metric_commits_ = reg.GetCounter("ingest.commits");
    metric_committed_cells_ = reg.GetCounter("ingest.committed_cells");
    metric_compactions_ = reg.GetCounter("ingest.compactions");
    metric_compactions_cancelled_ =
        reg.GetCounter("ingest.compactions_cancelled");
    metric_compacted_chunks_ = reg.GetCounter("ingest.compacted_chunks");
    metric_retired_freed_ = reg.GetCounter("ingest.retired_freed");
  }
}

Status IngestManager::Write(const std::vector<int32_t>& keys,
                            const std::vector<int64_t>& measures) {
  if (!db_->has_olap()) {
    return Status::NotSupported("ingest requires the OLAP array");
  }
  const OlapArray* olap = db_->olap();
  if (keys.size() != olap->num_dims()) {
    return Status::InvalidArgument("ingest key arity mismatch: got " +
                                   std::to_string(keys.size()) +
                                   ", expected " +
                                   std::to_string(olap->num_dims()));
  }
  if (measures.size() != num_measures_) {
    return Status::InvalidArgument("ingest measure arity mismatch: got " +
                                   std::to_string(measures.size()) +
                                   ", expected " +
                                   std::to_string(num_measures_));
  }
  // Resolve keys to base array indices; ingest never grows dimensions, so
  // an unknown key is a typed client error, not a silent new cell.
  CellCoords coords(keys.size());
  for (size_t d = 0; d < keys.size(); ++d) {
    PARADISE_ASSIGN_OR_RETURN(std::optional<uint32_t> index,
                              olap->KeyToIndex(d, keys[d]));
    if (!index.has_value()) {
      return Status::NotFound("unknown key " + std::to_string(keys[d]) +
                              " for dimension '" + olap->dim_name(d) +
                              "'; ingest requires existing dimension keys");
    }
    coords[d] = *index;
  }
  const ChunkLayout& layout = olap->layout();
  const uint64_t chunk_no = layout.CoordsToChunk(coords);
  const uint32_t offset = layout.CoordsToOffset(coords);

  std::lock_guard<std::mutex> lk(mu_);
  for (size_t m = 0; m < num_measures_; ++m) {
    pending_.measures[m][chunk_no].push_back(
        ChunkEntry{offset, measures[m]});
  }
  if (metric_writes_ != nullptr) metric_writes_->Increment();
  return Status::OK();
}

std::string IngestManager::SerializeState(
    uint64_t applied, uint64_t next_seq,
    const std::vector<LiveGeneration>& live) const {
  std::string out;
  out.append(kStateMagic, sizeof(kStateMagic));
  out.push_back(static_cast<char>(kStateVersion));
  AppendFixed64(&out, applied);
  AppendFixed64(&out, next_seq);
  AppendFixed32(&out, static_cast<uint32_t>(live.size()));
  for (const LiveGeneration& g : live) {
    AppendFixed64(&out, g.seq);
    AppendFixed64(&out, g.oid);
  }
  return out;
}

Status IngestManager::ParseState(
    const std::string& blob, uint64_t* applied, uint64_t* next_seq,
    std::vector<std::pair<uint64_t, ObjectId>>* gens) const {
  return ParseIngestState(blob, applied, next_seq, gens);
}

Status ParseIngestState(const std::string& blob, uint64_t* applied,
                        uint64_t* next_seq,
                        std::vector<std::pair<uint64_t, ObjectId>>* gens) {
  if (blob.size() < 25 ||
      std::memcmp(blob.data(), kStateMagic, sizeof(kStateMagic)) != 0) {
    return Status::Corruption("object is not an ingest state blob");
  }
  const uint8_t version = static_cast<uint8_t>(blob[4]);
  if (version != kStateVersion) {
    return Status::NotSupported("ingest state version " +
                                std::to_string(version) +
                                " is newer than this build supports (max " +
                                std::to_string(kStateVersion) + ")");
  }
  *applied = DecodeFixed64(blob.data() + 5);
  *next_seq = DecodeFixed64(blob.data() + 13);
  const uint32_t count = DecodeFixed32(blob.data() + 21);
  if (blob.size() != 25 + static_cast<size_t>(count) * 16) {
    return Status::Corruption("ingest state blob size mismatch");
  }
  gens->clear();
  gens->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const char* p = blob.data() + 25 + static_cast<size_t>(i) * 16;
    gens->emplace_back(DecodeFixed64(p), DecodeFixed64(p + 8));
  }
  return Status::OK();
}

std::vector<std::shared_ptr<const DeltaOverlay>>
IngestManager::BuildLiveOverlays() const {
  std::vector<const DeltaGeneration*> gens;
  gens.reserve(live_.size());
  for (const LiveGeneration& g : live_) gens.push_back(&g.gen);
  return BuildOverlays(num_measures_, gens);
}

Status IngestManager::Commit() {
  std::lock_guard<std::mutex> lk(mu_);
  const uint64_t cells = pending_.total_cells();
  if (cells == 0) return Status::OK();
  StorageManager* storage = db_->storage();

  // 1. Spill the generation copy-on-write and root it. Nothing here is
  //    visible to recovery until the checkpoint below commits the catalog.
  const uint64_t seq = next_seq_;
  pending_.seq = seq;
  PARADISE_ASSIGN_OR_RETURN(ObjectId gen_oid,
                            storage->objects()->Create(pending_.Serialize()));
  PARADISE_RETURN_IF_ERROR(
      storage->SetRoot(IngestGenerationRootName(seq), gen_oid));

  // 2. New state object listing the enlarged generation set.
  std::vector<LiveGeneration> new_live = live_;
  new_live.push_back(LiveGeneration{seq, gen_oid, DeltaGeneration()});
  PARADISE_ASSIGN_OR_RETURN(
      ObjectId new_state,
      storage->objects()->Create(
          SerializeState(applied_cells_ + cells, seq + 1, new_live)));
  PARADISE_RETURN_IF_ERROR(storage->SetRoot(kStateRoot, new_state));

  // 3. Adopt the new in-memory state, then build the overlays the newest
  //    epoch will serve.
  new_live.back().gen = std::move(pending_);
  pending_ = DeltaGeneration(num_measures_);
  live_ = std::move(new_live);
  next_seq_ = seq + 1;
  applied_cells_ += cells;
  const ObjectId old_state = state_oid_;
  state_oid_ = new_state;
  std::vector<std::shared_ptr<const DeltaOverlay>> overlays =
      BuildLiveOverlays();

  // 4. Commit point: the manifest write publishes the new epoch, and the
  //    overlay swap lands under the same pin lock so no reader can pair the
  //    new epoch with the old data (or vice versa).
  PARADISE_RETURN_IF_ERROR(db_->PublishIngest([&]() -> Status {
    OlapArray* olap = db_->olap();
    for (size_t m = 0; m < num_measures_; ++m) {
      olap->mutable_array(m)->PublishOverlay(overlays[m]);
    }
    return Status::OK();
  }));

  // 5. The previous state object is unreferenced as of the epoch just
  //    committed; freeing it now at worst leaks pages on a crash.
  if (old_state != kInvalidObjectId) FreeBestEffort(old_state);
  ++commits_;
  if (metric_commits_ != nullptr) metric_commits_->Increment();
  if (metric_committed_cells_ != nullptr) {
    metric_committed_cells_->Increment(cells);
  }
  return ReclaimRetiredLocked();
}

Status IngestManager::Recover() {
  std::lock_guard<std::mutex> lk(mu_);
  StorageManager* storage = db_->storage();
  PARADISE_ASSIGN_OR_RETURN(uint64_t state_oid,
                            storage->GetRoot(kStateRoot));
  PARADISE_ASSIGN_OR_RETURN(std::string blob,
                            storage->objects()->Read(state_oid));
  uint64_t applied = 0;
  uint64_t next_seq = 0;
  std::vector<std::pair<uint64_t, ObjectId>> gens;
  PARADISE_RETURN_IF_ERROR(ParseState(blob, &applied, &next_seq, &gens));

  std::vector<LiveGeneration> live;
  live.reserve(gens.size());
  for (const auto& [seq, oid] : gens) {
    PARADISE_ASSIGN_OR_RETURN(std::string gen_blob,
                              storage->objects()->Read(oid));
    PARADISE_ASSIGN_OR_RETURN(DeltaGeneration gen,
                              DeltaGeneration::Deserialize(gen_blob));
    if (gen.seq != seq) {
      return Status::Corruption(
          "ingest generation " + std::to_string(seq) +
          " carries sequence " + std::to_string(gen.seq));
    }
    live.push_back(LiveGeneration{seq, oid, std::move(gen)});
  }
  state_oid_ = state_oid;
  applied_cells_ = applied;
  next_seq_ = next_seq;
  live_ = std::move(live);

  // Republish: Open runs single-threaded before any reader exists, so the
  // overlays can swap in directly.
  std::vector<std::shared_ptr<const DeltaOverlay>> overlays =
      BuildLiveOverlays();
  OlapArray* olap = db_->olap();
  for (size_t m = 0; m < num_measures_; ++m) {
    olap->mutable_array(m)->PublishOverlay(overlays[m]);
  }
  return Status::OK();
}

bool IngestManager::ingested() const {
  std::lock_guard<std::mutex> lk(mu_);
  return applied_cells_ > 0;
}

uint64_t IngestManager::pending_cells() const {
  std::lock_guard<std::mutex> lk(mu_);
  return pending_.total_cells();
}

uint64_t IngestManager::applied_cells() const {
  std::lock_guard<std::mutex> lk(mu_);
  return applied_cells_;
}

IngestManager::Stats IngestManager::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.pending_cells = pending_.total_cells();
  s.applied_cells = applied_cells_;
  s.live_generations = live_.size();
  for (const LiveGeneration& g : live_) s.overlay_cells += g.gen.total_cells();
  s.commits = commits_;
  s.compactions = compactions_;
  s.compactions_cancelled = compactions_cancelled_;
  s.retired_pending = graveyard_.size();
  return s;
}

void IngestManager::FreeBestEffort(ObjectId oid) {
  // Post-checkpoint frees: a failure (or a crash mid-free) merely leaks
  // pages, which dbverify tolerates; it never corrupts committed state.
  (void)db_->storage()->objects()->Free(oid);
}

}  // namespace paradise
