// FaultSocket: a client-side socket decorator that injects network faults —
// short reads, short writes, stalls, mid-frame disconnects and truncated
// writes — deterministically (seeded PRNG plus a total injection budget),
// mirroring the storage layer's FaultInjectingDiskManager idiom. The chaos
// harness (tests/server_chaos_test.cc, bench/bench_resilience.cc) drives
// olapd through these sockets to prove the server survives a hostile
// network: every fault ends in a typed error or a clean close on the server
// side, never a hung session thread, a leaked worker, or a wrong reply to a
// healthy client.
//
// One FaultSocket serves one client thread; it is not thread-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace paradise::server {

/// Fault schedule: probabilistic fields draw from the seeded PRNG per
/// send/recv call; every injection counts against `max_injected_faults`,
/// which makes faults transient — a bounded retry loop eventually gets a
/// clean connection.
struct SocketFaultOptions {
  uint64_t seed = 42;

  /// Deliver only a 1..n prefix of what recv() returned (the rest stays
  /// buffered for the next call). Exercises the caller's frame reassembly.
  double short_read_probability = 0.0;

  /// Transmit only a 1..n-1 prefix of the requested bytes and report the
  /// short count; the caller's send loop continues, so the peer sees the
  /// frame arrive fragmented (mid-frame progress, never corruption).
  double short_write_probability = 0.0;

  /// Sleep stall_ms before the operation — a network hiccup; long stalls
  /// exercise the server's read_timeout_ms slow-loris reaping.
  double stall_probability = 0.0;
  uint32_t stall_ms = 20;

  /// Hard-close the socket instead of performing the operation; the peer
  /// sees EOF (mid-frame when a write was in progress). The call fails with
  /// kIOError("injected disconnect").
  double disconnect_probability = 0.0;

  /// Transmit a strict prefix of the bytes, then shut down the write side:
  /// the peer sees a truncated frame followed by EOF. The call fails with
  /// kIOError("injected truncation").
  double truncate_write_probability = 0.0;

  /// Total injected-fault budget across all kinds.
  uint64_t max_injected_faults = UINT64_MAX;
};

class FaultSocket {
 public:
  /// Connects to the server; the connection itself is never faulted (dial
  /// failures are the environment's business, not this injector's).
  static Result<std::unique_ptr<FaultSocket>> Dial(const std::string& host,
                                                   uint16_t port,
                                                   SocketFaultOptions faults);

  ~FaultSocket();

  FaultSocket(const FaultSocket&) = delete;
  FaultSocket& operator=(const FaultSocket&) = delete;

  /// Writes all of `data` (retrying short writes), subject to the fault
  /// schedule. A disconnect/truncation injection fails with kIOError and
  /// leaves the socket unusable.
  Status Send(std::string_view data);

  /// One bounded read. Returns bytes delivered, 0 on EOF; kIOError on a
  /// socket error or an injected disconnect.
  Result<size_t> Recv(char* buf, size_t n);

  void Close();
  bool closed() const { return fd_ < 0; }

  /// Replaces the schedule, reseeds the PRNG and zeroes the fault counters.
  void Arm(const SocketFaultOptions& faults);

  uint64_t injected_faults() const { return injected_; }
  uint64_t injected_short_reads() const { return short_reads_; }
  uint64_t injected_short_writes() const { return short_writes_; }
  uint64_t injected_stalls() const { return stalls_; }
  uint64_t injected_disconnects() const { return disconnects_; }
  uint64_t injected_truncations() const { return truncations_; }

 private:
  FaultSocket(int fd, const SocketFaultOptions& faults)
      : fd_(fd), faults_(faults), rng_(faults.seed) {}

  bool Armed() const { return injected_ < faults_.max_injected_faults; }
  /// Draws once against `probability` while the budget lasts.
  bool Draw(double probability);
  void MaybeStall();

  int fd_;
  SocketFaultOptions faults_;
  Random rng_;
  uint64_t injected_ = 0;
  uint64_t short_reads_ = 0;
  uint64_t short_writes_ = 0;
  uint64_t stalls_ = 0;
  uint64_t disconnects_ = 0;
  uint64_t truncations_ = 0;
};

}  // namespace paradise::server
