#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/metrics.h"
#include "query/result_cache.h"
#include "schema/database.h"
#include "server/net_util.h"

namespace paradise::server {

OlapServer::OlapServer(Database* db, ServerOptions options)
    : db_(db), options_(std::move(options)) {
  AdmissionOptions admission;
  if (options_.max_inflight > 0) {
    admission.max_inflight = options_.max_inflight;
    admission.max_queued = options_.max_queued;
  } else {
    admission = AdmissionController::SizedForStorage(
        db_->storage()->options());
  }
  admission.metrics_enabled = options_.metrics_enabled;
  admission_ = std::make_unique<AdmissionController>(admission);

  if (options_.enable_result_cache) {
    query::ConsolidationResultCache::Options cache_options;
    cache_options.byte_budget = options_.cache_byte_budget;
    cache_options.metrics_enabled = options_.metrics_enabled;
    cache_ = std::make_unique<query::ConsolidationResultCache>(cache_options);
  }

  session_options_.max_query_threads = options_.max_query_threads;
  session_options_.default_deadline_ms = options_.default_deadline_ms;
  session_options_.read_timeout_ms = options_.read_timeout_ms;
  session_options_.idle_timeout_ms = options_.idle_timeout_ms;
  session_options_.artificial_query_delay_ms =
      options_.artificial_query_delay_ms;
  session_options_.metrics_enabled = options_.metrics_enabled;
}

OlapServer::~OlapServer() { Stop(); }

Status OlapServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = ErrnoStatus("bind " + options_.host + ":" +
                                  std::to_string(options_.port));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    const Status st = ErrnoStatus("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    const Status st = ErrnoStatus("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(bound.sin_port);

  if (options_.metrics_enabled) {
    MetricsRegistry::Default().GetGauge("server.listening")->Set(1);
  }
  started_ = true;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void OlapServer::AcceptLoop() {
  Counter* m_connections =
      options_.metrics_enabled
          ? MetricsRegistry::Default().GetCounter("server.connections")
          : nullptr;
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // The listener was shut down (Stop) or is out of descriptors; in
      // either case the loop cannot make progress on this error.
      if (stopping_.load(std::memory_order_relaxed) || errno != EMFILE) {
        break;
      }
      continue;
    }
    counters_.connections.fetch_add(1, std::memory_order_relaxed);
    if (m_connections != nullptr) m_connections->Increment();

    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    ReapFinishedLocked();
    auto conn = std::make_unique<Connection>(fd);
    Connection* raw = conn.get();
    conn->thread = std::thread([this, raw] { RunSession(raw); });
    connections_.push_back(std::move(conn));
  }
}

void OlapServer::RunSession(Connection* conn) {
  {
    Session session(conn->fd, db_, cache_.get(), admission_.get(),
                    session_options_, &counters_);
    session.Run();
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
  conn->done.store(true, std::memory_order_release);
}

void OlapServer::ReapFinishedLocked() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void OlapServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);

  // Wake queries waiting for admission, then the accept loop.
  admission_->Shutdown();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // Wake every session wherever it blocks, then join: shutdown() makes the
  // socket readable, which unblocks the main loop's poll/recv (first byte
  // or mid-frame alike) and the per-query cancel watcher — whose failed
  // recv flips the query's token, so even a session deep in a chunk loop
  // unwinds within one chunk's work. Sockets are closed by the session
  // threads themselves (under mu_); anything left (a thread that never
  // reached its close) is closed here after the join.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::unique_ptr<Connection>& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (const std::unique_ptr<Connection>& conn : connections_) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  for (const std::unique_ptr<Connection>& conn : connections_) {
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  connections_.clear();

  if (options_.metrics_enabled) {
    MetricsRegistry::Default().GetGauge("server.listening")->Set(0);
  }
  started_ = false;
}

OlapServer::Stats OlapServer::stats() const {
  Stats s;
  s.connections = counters_.connections.load(std::memory_order_relaxed);
  s.queries_ok = counters_.queries_ok.load(std::memory_order_relaxed);
  s.queries_failed = counters_.queries_failed.load(std::memory_order_relaxed);
  s.busy_replies = counters_.busy_replies.load(std::memory_order_relaxed);
  s.protocol_errors =
      counters_.protocol_errors.load(std::memory_order_relaxed);
  s.timeouts = counters_.timeouts.load(std::memory_order_relaxed);
  s.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  s.shed_expired = counters_.shed_expired.load(std::memory_order_relaxed);
  s.read_timeouts = counters_.read_timeouts.load(std::memory_order_relaxed);
  return s;
}

}  // namespace paradise::server
