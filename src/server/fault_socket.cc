#include "server/fault_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include "server/net_util.h"

namespace paradise::server {

Result<std::unique_ptr<FaultSocket>> FaultSocket::Dial(
    const std::string& host, uint16_t port, SocketFaultOptions faults) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status st =
        ErrnoStatus("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return st;
  }
  SetTcpNoDelay(fd);
  return std::unique_ptr<FaultSocket>(new FaultSocket(fd, faults));
}

FaultSocket::~FaultSocket() { Close(); }

void FaultSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FaultSocket::Arm(const SocketFaultOptions& faults) {
  faults_ = faults;
  rng_ = Random(faults.seed);
  injected_ = 0;
  short_reads_ = 0;
  short_writes_ = 0;
  stalls_ = 0;
  disconnects_ = 0;
  truncations_ = 0;
}

bool FaultSocket::Draw(double probability) {
  if (probability <= 0.0 || !Armed()) return false;
  return rng_.Bernoulli(probability);
}

void FaultSocket::MaybeStall() {
  if (!Draw(faults_.stall_probability)) return;
  ++injected_;
  ++stalls_;
  std::this_thread::sleep_for(std::chrono::milliseconds(faults_.stall_ms));
}

Status FaultSocket::Send(std::string_view data) {
  if (fd_ < 0) return Status::IOError("fault socket is closed");
  size_t sent = 0;
  while (sent < data.size()) {
    MaybeStall();
    if (Draw(faults_.disconnect_probability)) {
      ++injected_;
      ++disconnects_;
      Close();
      return Status::IOError("injected disconnect");
    }
    size_t chunk = data.size() - sent;
    if (Draw(faults_.truncate_write_probability)) {
      // Put a strict prefix on the wire, then EOF: the peer sees a frame cut
      // off mid-payload — the torn write of the network world.
      ++injected_;
      ++truncations_;
      const size_t keep = rng_.Uniform(chunk);  // 0..chunk-1 extra bytes
      Status st = SendAll(fd_, data.substr(sent, keep));
      ::shutdown(fd_, SHUT_WR);
      if (!st.ok()) return st;
      return Status::IOError("injected truncation");
    }
    if (chunk > 1 && Draw(faults_.short_write_probability)) {
      ++injected_;
      ++short_writes_;
      chunk = 1 + rng_.Uniform(chunk - 1);  // 1..chunk-1
    }
    const Status st = SendAll(fd_, data.substr(sent, chunk));
    if (!st.ok()) return st;
    sent += chunk;
  }
  return Status::OK();
}

Result<size_t> FaultSocket::Recv(char* buf, size_t n) {
  if (fd_ < 0) return Status::IOError("fault socket is closed");
  if (n == 0) return static_cast<size_t>(0);
  MaybeStall();
  if (Draw(faults_.disconnect_probability)) {
    ++injected_;
    ++disconnects_;
    Close();
    return Status::IOError("injected disconnect");
  }
  size_t want = n;
  if (n > 1 && Draw(faults_.short_read_probability)) {
    // The unread tail stays in the kernel buffer for the next call, so a
    // short read only fragments the stream — it never loses bytes.
    ++injected_;
    ++short_reads_;
    want = 1 + rng_.Uniform(n - 1);  // 1..n-1
  }
  const ssize_t got = RecvSome(fd_, buf, want);
  if (got < 0) return ErrnoStatus("recv");
  return static_cast<size_t>(got);
}

}  // namespace paradise::server
