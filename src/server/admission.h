// AdmissionController: bounds the number of queries olapd executes at once.
// Up to max_inflight queries run; up to max_queued more wait on a condition
// variable; anything beyond that is rejected immediately with kBusy, which
// the session turns into a typed SERVER_BUSY reply instead of stalling the
// connection (DESIGN.md choice 12). The limits default to a multiple of
// StorageOptions::io_pool_threads — the width of the background I/O pool
// that ultimately serves the queries' chunk reads — via SizedForStorage.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/cancellation.h"
#include "common/options.h"

namespace paradise {
class Counter;
class Gauge;
}  // namespace paradise

namespace paradise::server {

struct AdmissionOptions {
  /// Queries executing concurrently. Clamped to >= 1.
  size_t max_inflight = 4;

  /// Queries waiting for a slot beyond max_inflight. 0 = reject as soon as
  /// every slot is taken.
  size_t max_queued = 16;

  /// Mirror admission events into MetricsRegistry::Default() under
  /// "server.*" (handles resolved once, at construction).
  bool metrics_enabled = false;
};

class AdmissionController {
 public:
  enum class Outcome : uint8_t {
    kAdmitted = 0,  // a slot is held; caller must Release()
    kBusy,          // both the slots and the wait queue are full
    kShutdown,      // controller shut down while acquiring
    kExpired,       // the token's deadline passed before a slot freed up
    kCancelled,     // the token was cancelled while queued
  };

  explicit AdmissionController(AdmissionOptions options);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Takes an execution slot, waiting in the bounded queue if none is free.
  /// Queued waiters are served before newly arriving requests (no barging),
  /// so the queue drains once load subsides.
  ///
  /// With a token, admission is deadline-aware: a query whose deadline has
  /// already passed (or passes while queued) is shed with kExpired — the
  /// slot goes to work someone is still waiting for — and a token cancelled
  /// while queued returns kCancelled (the canceller must Poke() to wake the
  /// waiter). Neither outcome holds a slot.
  Outcome Acquire(const CancellationToken* token = nullptr);

  /// Wakes every queued waiter to re-check its token. Called after flipping
  /// a token's cancel flag from another thread.
  void Poke();

  /// Returns a slot taken by a successful Acquire().
  void Release();

  /// Wakes every waiter with kShutdown; subsequent Acquire()s fail fast.
  void Shutdown();

  struct Snapshot {
    uint64_t admitted = 0;
    uint64_t busy_rejections = 0;
    uint64_t shed_expired = 0;
    size_t inflight = 0;
    size_t queued = 0;
  };
  Snapshot snapshot() const;

  const AdmissionOptions& options() const { return options_; }

  /// The default sizing rule: 2 execution slots per background I/O thread
  /// (minimum 2 — queries also do CPU work while others wait on I/O), and a
  /// wait queue 4x the slot count.
  static AdmissionOptions SizedForStorage(const StorageOptions& storage);

 private:
  const AdmissionOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
  size_t inflight_ = 0;
  size_t queued_ = 0;
  uint64_t admitted_ = 0;
  uint64_t busy_rejections_ = 0;
  uint64_t shed_expired_ = 0;

  // Registry handles, null unless options_.metrics_enabled.
  Counter* m_admitted_ = nullptr;
  Counter* m_busy_ = nullptr;
  Counter* m_shed_expired_ = nullptr;
  Gauge* m_inflight_ = nullptr;
  Gauge* m_queued_ = nullptr;
};

}  // namespace paradise::server
