// Small POSIX socket helpers shared by the server loop, sessions and the
// blocking client. Everything retries EINTR and uses MSG_NOSIGNAL so a peer
// that vanished mid-write surfaces as a Status, never a SIGPIPE.
#pragma once

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace paradise::server {

inline Status ErrnoStatus(std::string_view what) {
  return Status::IOError(std::string(what) + ": " +
                         std::strerror(errno));
}

/// Disables Nagle batching — request/reply protocols want the frame on the
/// wire immediately. Best-effort: failure is ignored.
inline void SetTcpNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Writes all of `data`, retrying short writes and EINTR.
inline Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// One recv(), retrying EINTR. Returns bytes read, 0 on orderly shutdown,
/// -1 on error (errno set).
inline ssize_t RecvSome(int fd, char* buf, size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

/// What a bounded wait for readability observed.
enum class PollWait : uint8_t {
  kReadable = 0,  // data (or EOF/HUP) is pending; recv() will not block
  kTimedOut,      // the timeout elapsed with nothing to read
  kError,         // poll() itself failed (errno set)
};

/// Waits up to `timeout_ms` for `fd` to become readable, retrying EINTR
/// with the remaining budget. timeout_ms < 0 waits forever. A peer close or
/// a shutdown() on the fd counts as readable — the caller's recv() then
/// returns 0/-1, so blocked readers are interruptible (the Server::Stop()
/// wake-up path).
inline PollWait WaitReadable(int fd, int timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return PollWait::kReadable;
    if (rc == 0) return PollWait::kTimedOut;
    if (errno != EINTR) return PollWait::kError;
    if (timeout_ms >= 0) {
      const auto elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed_ms >= timeout_ms) return PollWait::kTimedOut;
      timeout_ms -= static_cast<int>(elapsed_ms);
    }
  }
}

}  // namespace paradise::server
