// Small POSIX socket helpers shared by the server loop, sessions and the
// blocking client. Everything retries EINTR and uses MSG_NOSIGNAL so a peer
// that vanished mid-write surfaces as a Status, never a SIGPIPE.
#pragma once

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace paradise::server {

inline Status ErrnoStatus(std::string_view what) {
  return Status::IOError(std::string(what) + ": " +
                         std::strerror(errno));
}

/// Disables Nagle batching — request/reply protocols want the frame on the
/// wire immediately. Best-effort: failure is ignored.
inline void SetTcpNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Writes all of `data`, retrying short writes and EINTR.
inline Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// One recv(), retrying EINTR. Returns bytes read, 0 on orderly shutdown,
/// -1 on error (errno set).
inline ssize_t RecvSome(int fd, char* buf, size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

}  // namespace paradise::server
