#include "server/wire.h"

#include <vector>

#include "common/coding.h"

namespace paradise::server {

namespace {

// --- bounds-checked little-endian payload reader/writer --------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  out->append(buf, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Cursor over a payload; every Get* fails cleanly at the end instead of
/// over-reading, and Done() rejects trailing garbage.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (data_.size() - pos_ < 1) return false;
    *v = static_cast<uint8_t>(data_[pos_]);
    pos_ += 1;
    return true;
  }

  bool GetU32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return false;
    *v = DecodeFixed32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (data_.size() - pos_ < 8) return false;
    *v = DecodeFixed64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool GetString(std::string* s) {
    uint32_t len;
    if (!GetU32(&len)) return false;
    if (data_.size() - pos_ < len) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool Done() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Status Malformed(std::string_view what) {
  return Status::InvalidArgument("malformed " + std::string(what) +
                                 " payload");
}

}  // namespace

bool IsKnownFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kCancel);
}

std::string_view WireErrorToString(WireError e) {
  switch (e) {
    case WireError::kBadRequest:
      return "BAD_REQUEST";
    case WireError::kQueryFailed:
      return "QUERY_FAILED";
    case WireError::kServerBusy:
      return "SERVER_BUSY";
    case WireError::kSnapshotGone:
      return "SNAPSHOT_GONE";
    case WireError::kShuttingDown:
      return "SHUTTING_DOWN";
    case WireError::kResultTooLarge:
      return "RESULT_TOO_LARGE";
    case WireError::kQueryTimeout:
      return "QUERY_TIMEOUT";
    case WireError::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, kWireMagic);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU8(&out, static_cast<uint8_t>(type));
  out.append(3, '\0');  // pad — must stay zero on the wire
  out.append(payload);
  return out;
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  // Compact lazily so repeated small frames don't re-copy the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  const char* base = buffer_.data() + consumed_;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::optional<Frame>{};

  const uint32_t magic = DecodeFixed32(base);
  if (magic != kWireMagic) {
    return Status::Corruption("bad frame magic");
  }
  const uint32_t payload_len = DecodeFixed32(base + 4);
  if (payload_len > max_payload_) {
    return Status::Corruption("oversized frame: " +
                              std::to_string(payload_len) + " bytes");
  }
  const uint8_t type = static_cast<uint8_t>(base[8]);
  if (!IsKnownFrameType(type)) {
    return Status::Corruption("unknown frame type " + std::to_string(type));
  }
  if (base[9] != 0 || base[10] != 0 || base[11] != 0) {
    return Status::Corruption("nonzero frame pad bytes");
  }
  if (available < kFrameHeaderBytes + payload_len) {
    return std::optional<Frame>{};  // wait for the rest of the payload
  }
  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(base + kFrameHeaderBytes, payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  return std::optional<Frame>{std::move(frame)};
}

// --- typed payloads --------------------------------------------------------

Status ErrorReplyToStatus(const ErrorReply& e) {
  if (e.status_code != StatusCode::kOk) {
    return Status(e.status_code, e.message);
  }
  return Status::Internal(std::string(WireErrorToString(e.error)) +
                          (e.message.empty() ? "" : ": " + e.message));
}

std::string EncodeHello(const HelloReply& hello) {
  std::string out;
  PutU32(&out, hello.protocol_version);
  PutU64(&out, hello.pinned_epoch);
  PutString(&out, hello.cube_name);
  return out;
}

Result<HelloReply> DecodeHello(std::string_view payload) {
  Reader r(payload);
  HelloReply hello;
  if (!r.GetU32(&hello.protocol_version) || !r.GetU64(&hello.pinned_epoch) ||
      !r.GetString(&hello.cube_name) || !r.Done()) {
    return Malformed("hello");
  }
  return hello;
}

namespace {
constexpr uint8_t kQueryFlagTrace = 1u << 0;
constexpr uint8_t kQueryFlagNoCache = 1u << 1;
}  // namespace

std::string EncodeQueryRequest(const QueryRequest& request) {
  std::string out;
  PutU8(&out, request.engine);
  uint8_t flags = 0;
  if (request.trace) flags |= kQueryFlagTrace;
  if (request.no_cache) flags |= kQueryFlagNoCache;
  PutU8(&out, flags);
  PutU8(&out, 0);  // pad
  PutU8(&out, 0);  // pad
  PutU32(&out, request.num_threads);
  PutU32(&out, request.deadline_ms);
  PutString(&out, request.sql);
  return out;
}

Result<QueryRequest> DecodeQueryRequest(std::string_view payload) {
  Reader r(payload);
  QueryRequest request;
  uint8_t flags = 0, pad0 = 0, pad1 = 0;
  if (!r.GetU8(&request.engine) || !r.GetU8(&flags) || !r.GetU8(&pad0) ||
      !r.GetU8(&pad1) || !r.GetU32(&request.num_threads) ||
      !r.GetU32(&request.deadline_ms) || !r.GetString(&request.sql) ||
      !r.Done()) {
    return Malformed("query request");
  }
  if (pad0 != 0 || pad1 != 0 ||
      (flags & ~(kQueryFlagTrace | kQueryFlagNoCache)) != 0) {
    return Malformed("query request");
  }
  if (request.num_threads == 0) {
    return Status::InvalidArgument("query request: num_threads must be >= 1");
  }
  if (request.sql.empty()) {
    return Status::InvalidArgument("query request: empty SQL");
  }
  request.trace = (flags & kQueryFlagTrace) != 0;
  request.no_cache = (flags & kQueryFlagNoCache) != 0;
  return request;
}

std::string EncodeErrorReply(const ErrorReply& error) {
  std::string out;
  PutU8(&out, static_cast<uint8_t>(error.error));
  PutU8(&out, static_cast<uint8_t>(error.status_code));
  PutU8(&out, 0);  // pad
  PutU8(&out, 0);  // pad
  PutString(&out, error.message);
  return out;
}

Result<ErrorReply> DecodeErrorReply(std::string_view payload) {
  Reader r(payload);
  uint8_t error = 0, code = 0, pad0 = 0, pad1 = 0;
  ErrorReply reply;
  if (!r.GetU8(&error) || !r.GetU8(&code) || !r.GetU8(&pad0) ||
      !r.GetU8(&pad1) || !r.GetString(&reply.message) || !r.Done()) {
    return Malformed("error reply");
  }
  if (pad0 != 0 || pad1 != 0 || error < 1 ||
      error > static_cast<uint8_t>(WireError::kCancelled) ||
      code > static_cast<uint8_t>(StatusCode::kCancelled)) {
    return Malformed("error reply");
  }
  reply.error = static_cast<WireError>(error);
  reply.status_code = static_cast<StatusCode>(code);
  return reply;
}

void AppendGroupedResult(const query::GroupedResult& result,
                         std::string* out) {
  const auto& columns = result.group_columns();
  PutU32(out, static_cast<uint32_t>(columns.size()));
  for (const std::string& name : columns) PutString(out, name);
  PutU64(out, result.num_groups());
  for (const query::ResultRow& row : result.rows()) {
    for (int32_t code : row.group) {
      PutU32(out, static_cast<uint32_t>(code));
    }
    PutI64(out, row.agg.sum);
    PutU64(out, row.agg.count);
    PutI64(out, row.agg.min);
    PutI64(out, row.agg.max);
  }
}

namespace {

Result<query::GroupedResult> ReadGroupedResult(Reader* r) {
  uint32_t num_columns = 0;
  if (!r->GetU32(&num_columns)) return Malformed("result");
  // Cheap sanity bound: a row costs at least 4*num_columns + 32 bytes, so a
  // huge declared column count on a short payload fails fast.
  if (num_columns > 1024) return Malformed("result");
  std::vector<std::string> columns(num_columns);
  for (std::string& name : columns) {
    if (!r->GetString(&name)) return Malformed("result");
  }
  query::GroupedResult result(std::move(columns));
  uint64_t num_rows = 0;
  if (!r->GetU64(&num_rows)) return Malformed("result");
  const uint64_t row_bytes = 4ull * num_columns + 32;
  if (num_rows > r->remaining() / row_bytes + 1) return Malformed("result");
  for (uint64_t i = 0; i < num_rows; ++i) {
    query::ResultRow row;
    row.group.resize(num_columns);
    for (uint32_t c = 0; c < num_columns; ++c) {
      uint32_t code;
      if (!r->GetU32(&code)) return Malformed("result");
      row.group[c] = static_cast<int32_t>(code);
    }
    if (!r->GetI64(&row.agg.sum) || !r->GetU64(&row.agg.count) ||
        !r->GetI64(&row.agg.min) || !r->GetI64(&row.agg.max)) {
      return Malformed("result");
    }
    result.Add(std::move(row));
  }
  return result;
}

}  // namespace

std::string EncodeResultReply(const ResultReply& reply) {
  std::string out;
  PutString(&out, reply.engine);
  PutString(&out, reply.plan_reason);
  PutString(&out, reply.stats_json);
  PutU8(&out, reply.agg);
  AppendGroupedResult(reply.result, &out);
  return out;
}

Result<ResultReply> DecodeResultReply(std::string_view payload) {
  Reader r(payload);
  ResultReply reply;
  if (!r.GetString(&reply.engine) || !r.GetString(&reply.plan_reason) ||
      !r.GetString(&reply.stats_json) || !r.GetU8(&reply.agg)) {
    return Malformed("result reply");
  }
  PARADISE_ASSIGN_OR_RETURN(reply.result, ReadGroupedResult(&r));
  if (!r.Done()) return Malformed("result reply");
  return reply;
}

}  // namespace paradise::server
