#include "server/session.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "query/planner.h"
#include "query/result_cache.h"
#include "query/sql.h"
#include "schema/database.h"
#include "server/net_util.h"

namespace paradise::server {

namespace {

/// A slot from the admission controller, released on scope exit.
class AdmissionSlot {
 public:
  AdmissionSlot(AdmissionController* admission, const CancellationToken* token)
      : admission_(admission), outcome_(admission->Acquire(token)) {}
  ~AdmissionSlot() {
    if (outcome_ == AdmissionController::Outcome::kAdmitted) {
      admission_->Release();
    }
  }
  AdmissionController::Outcome outcome() const { return outcome_; }

 private:
  AdmissionController* const admission_;
  const AdmissionController::Outcome outcome_;
};

}  // namespace

Session::Session(int fd, Database* db,
                 query::ConsolidationResultCache* cache,
                 AdmissionController* admission, SessionOptions options,
                 ServerCounters* counters)
    : fd_(fd),
      db_(db),
      cache_(cache),
      admission_(admission),
      options_(options),
      counters_(counters) {
  if (options_.metrics_enabled) {
    MetricsRegistry& registry = MetricsRegistry::Default();
    m_queries_ = registry.GetCounter("server.queries");
    m_errors_ = registry.GetCounter("server.query_errors");
    m_timeouts_ = registry.GetCounter("server.timeouts");
    m_cancelled_ = registry.GetCounter("server.cancelled");
    m_query_micros_ = registry.GetHistogram("server.query_micros");
  }
  // Best effort; on failure the watcher degrades to a short poll timeout.
  if (::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
  }
}

Session::~Session() {
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void Session::Run() {
  SetTcpNoDelay(fd_);
  pinned_epoch_ = db_->commit_epoch();
  HelloReply hello;
  hello.protocol_version = kProtocolVersion;
  hello.pinned_epoch = pinned_epoch_;
  hello.cube_name = db_->schema().cube_name;
  if (!SendFrame(FrameType::kHello, EncodeHello(hello))) return;

  char buf[64 * 1024];
  for (;;) {
    // Frames the cancel watcher captured during the last query come first;
    // handling one may itself run a query and append more.
    while (!pending_frames_.empty()) {
      Frame frame = std::move(pending_frames_.front());
      pending_frames_.erase(pending_frames_.begin());
      if (!HandleFrame(frame)) return;
    }
    for (;;) {
      Result<std::optional<Frame>> next = decoder_.Next();
      if (!next.ok()) {
        // Malformed stream (bad magic / flipped header / oversized length):
        // one typed reply, best effort, then a clean close.
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendError(WireError::kBadRequest, StatusCode::kOk,
                  next.status().message());
        return;
      }
      if (!next->has_value()) break;
      if (!HandleFrame(**next)) return;
      if (!pending_frames_.empty()) break;  // back to the pending queue
    }
    if (!pending_frames_.empty()) continue;
    // Bounded wait for bytes: a frame mid-receive must keep making progress
    // (slow-loris protection); an idle connection gets the idle budget.
    const bool mid_frame = decoder_.buffered_bytes() > 0;
    const uint32_t budget_ms =
        mid_frame ? options_.read_timeout_ms : options_.idle_timeout_ms;
    const int timeout_ms =
        budget_ms == 0
            ? -1
            : static_cast<int>(std::min<uint32_t>(budget_ms, 1u << 30));
    const PollWait wait = WaitReadable(fd_, timeout_ms);
    if (wait == PollWait::kError) return;
    if (wait == PollWait::kTimedOut) {
      counters_->read_timeouts.fetch_add(1, std::memory_order_relaxed);
      // No reply: a peer too slow to finish a frame (or gone idle past the
      // budget) gets a close, not a frame it may never read.
      return;
    }
    const ssize_t n = RecvSome(fd_, buf, sizeof(buf));
    if (n <= 0) return;  // disconnect (0) or socket error/shutdown (<0)
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

bool Session::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      return SendFrame(FrameType::kPong, "");
    case FrameType::kQuery: {
      Result<QueryRequest> request = DecodeQueryRequest(frame.payload);
      if (!request.ok()) {
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendError(WireError::kBadRequest, request.status().code(),
                  request.status().message());
        return false;
      }
      return HandleQuery(*request);
    }
    case FrameType::kCancel:
      if (!frame.payload.empty()) {
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendError(WireError::kBadRequest, StatusCode::kOk,
                  "cancel frame must have an empty payload");
        return false;
      }
      // No query in flight: the cancel lost the race with the reply (or was
      // unsolicited). Ignoring it keeps one-reply-per-request intact.
      return true;
    case FrameType::kHello:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kPong:
      // Server-to-client frame types are never valid requests.
      counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      SendError(WireError::kBadRequest, StatusCode::kOk,
                "unexpected frame type from client");
      return false;
  }
  return false;
}

bool Session::HandleQuery(const QueryRequest& request) {
  // Effective deadline: the client's, capped by the server-wide default; a
  // client without one inherits the default outright.
  CancellationToken token;
  uint32_t deadline_ms = request.deadline_ms;
  if (options_.default_deadline_ms > 0) {
    deadline_ms = deadline_ms == 0
                      ? options_.default_deadline_ms
                      : std::min(deadline_ms, options_.default_deadline_ms);
  }
  if (deadline_ms > 0) token.SetDeadlineAfterMs(deadline_ms);

  // The watcher owns the socket's read side until the reply decision is
  // made; it is joined before the main loop touches the decoder again.
  std::atomic<bool> watcher_stop{false};
  std::thread watcher(
      [this, &token, &watcher_stop] { WatchForCancel(&token, &watcher_stop); });
  const bool keep_open = ExecuteQuery(request, &token);
  watcher_stop.store(true, std::memory_order_release);
  WakeWatcher();
  watcher.join();
  return keep_open;
}

bool Session::ExecuteQuery(const QueryRequest& request,
                           CancellationToken* token) {
  AdmissionSlot slot(admission_, token);
  switch (slot.outcome()) {
    case AdmissionController::Outcome::kBusy:
      counters_->busy_replies.fetch_add(1, std::memory_order_relaxed);
      // The connection stays open: busy is a retryable condition.
      return SendError(WireError::kServerBusy, StatusCode::kOk,
                       "admission queue full; retry");
    case AdmissionController::Outcome::kShutdown:
      SendError(WireError::kShuttingDown, StatusCode::kOk,
                "server shutting down");
      return false;
    case AdmissionController::Outcome::kExpired:
      return SendTokenStatus(
          Status::DeadlineExceeded("deadline expired while queued"),
          /*shed_by_admission=*/true);
    case AdmissionController::Outcome::kCancelled:
      return SendTokenStatus(Status::Cancelled("query cancelled while queued"));
    case AdmissionController::Outcome::kAdmitted:
      break;
  }
  if (m_queries_ != nullptr) m_queries_->Increment();
  Stopwatch watch;
  if (options_.artificial_query_delay_ms > 0) {
    // Token-aware slices, so deadlines and cancels interrupt the artificial
    // delay the way they would a real chunk loop.
    for (uint32_t slept = 0;
         slept < options_.artificial_query_delay_ms && !token->ShouldStop();
         ++slept) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  {
    const Status st = token->Check();
    if (!st.ok()) return SendTokenStatus(st);
  }

  Result<query::ConsolidationQuery> compiled =
      query::CompileSql(request.sql, db_->schema());
  if (!compiled.ok()) {
    return SendError(WireError::kQueryFailed, compiled.status().code(),
                     compiled.status().message());
  }
  const query::ConsolidationQuery& q = *compiled;

  EngineKind kind = EngineKind::kArray;
  std::string plan_reason;
  if (request.engine != 0) {
    const uint8_t raw = static_cast<uint8_t>(request.engine - 1);
    if (raw > static_cast<uint8_t>(EngineKind::kBTreeSelect)) {
      return SendError(WireError::kBadRequest, StatusCode::kInvalidArgument,
                       "unknown engine id " + std::to_string(request.engine));
    }
    kind = static_cast<EngineKind>(raw);
  } else {
    Result<PlanChoice> plan = ChoosePlan(*db_, q);
    if (!plan.ok()) {
      return SendError(WireError::kQueryFailed, plan.status().code(),
                       plan.status().message());
    }
    kind = plan->engine;
    plan_reason = std::move(plan->reason);
  }

  RunQueryOptions run_options;
  // The cold-buffer drop is a single-client benchmarking protocol; a server
  // evicting shared pages under concurrent readers would be pathological,
  // so every server-side query runs warm.
  run_options.cold = false;
  run_options.num_threads = std::clamp<size_t>(
      request.num_threads, 1, std::max<size_t>(1, options_.max_query_threads));
  run_options.trace = request.trace;
  run_options.cancel = token;

  const uint64_t current_epoch = db_->commit_epoch();
  if (current_epoch != pinned_epoch_) {
    return ServeFromPinnedSnapshot(q, current_epoch);
  }
  if (cache_ != nullptr && !request.no_cache) {
    run_options.cache = cache_;
    // Pin cache reads/inserts to the connect-time epoch: if a checkpoint
    // lands mid-query, the result is filed under the epoch it was computed
    // against instead of poisoning the new one.
    run_options.cache_pin_epoch = pinned_epoch_;
  }

  Result<Execution> exec = RunQuery(db_, kind, q, run_options);
  if (!exec.ok()) {
    if (exec.status().IsDeadlineExceeded() || exec.status().IsCancelled()) {
      return SendTokenStatus(exec.status());
    }
    return SendError(WireError::kQueryFailed, exec.status().code(),
                     exec.status().message());
  }
  // Re-validate the epoch before serving the bytes: a commit landing between
  // the check above and the engine's atomic PinArray() may have let the
  // engine pin the newer version set. Epochs only increase, so an unchanged
  // epoch here proves the pin happened at pinned_epoch_; a moved epoch means
  // the result may carry new-epoch bytes and must not be served as
  // pinned-snapshot output — degrade to the cache-only pinned path instead.
  const uint64_t post_epoch = db_->commit_epoch();
  if (post_epoch != pinned_epoch_) {
    return ServeFromPinnedSnapshot(q, post_epoch);
  }
  if (m_query_micros_ != nullptr) {
    m_query_micros_->Record(
        static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  }

  ResultReply reply;
  reply.engine = std::string(EngineKindToString(kind));
  reply.plan_reason = std::move(plan_reason);
  reply.stats_json = exec->stats.ToJson();
  reply.agg = static_cast<uint8_t>(q.agg);
  reply.result = std::move(exec->result);
  return SendResult(std::move(reply));
}

void Session::WatchForCancel(CancellationToken* token,
                             const std::atomic<bool>* stop) {
  DrainWakePipe();  // stale wake bytes from an earlier query's shutdown
  // A kCancel pipelined right behind the query may already sit decoded in
  // the buffer — honor it before blocking on the socket.
  if (!DrainFramesForCancel(token)) return;
  char buf[4096];
  while (!stop->load(std::memory_order_acquire)) {
    struct pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    nfds_t nfds = 1;
    if (wake_pipe_[0] >= 0) {
      fds[1].fd = wake_pipe_[0];
      fds[1].events = POLLIN;
      fds[1].revents = 0;
      nfds = 2;
    }
    const int rc = ::poll(fds, nfds, wake_pipe_[0] >= 0 ? -1 : 20);
    if (stop->load(std::memory_order_acquire)) return;
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (rc == 0) continue;
    if (nfds == 2 && fds[1].revents != 0) {
      DrainWakePipe();
      continue;  // loop re-checks the stop flag
    }
    if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
    const ssize_t n = RecvSome(fd_, buf, sizeof(buf));
    if (n <= 0) {
      // Peer vanished (or Server::Stop() shut the socket down): nobody is
      // waiting for this result — stop the work.
      token->RequestCancel();
      admission_->Poke();
      return;
    }
    decoder_.Append(buf, static_cast<size_t>(n));
    if (!DrainFramesForCancel(token)) return;
  }
}

bool Session::DrainFramesForCancel(CancellationToken* token) {
  for (;;) {
    Result<std::optional<Frame>> next = decoder_.Next();
    if (!next.ok()) {
      // Corrupt stream mid-query. The main loop will re-surface the same
      // decoder error and close; no point finishing work for a connection
      // that is already doomed.
      token->RequestCancel();
      admission_->Poke();
      return false;
    }
    if (!next->has_value()) return true;
    Frame frame = std::move(**next);
    if (frame.type == FrameType::kCancel && frame.payload.empty()) {
      token->RequestCancel();
      admission_->Poke();
    } else {
      // Pipelined requests (another query, a ping, a bad cancel) keep their
      // order and are handled by the main loop after the current reply.
      pending_frames_.push_back(std::move(frame));
    }
  }
}

void Session::WakeWatcher() {
  if (wake_pipe_[1] < 0) return;
  const char byte = 0;
  // Non-blocking; a full pipe already guarantees a pending wake-up.
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void Session::DrainWakePipe() {
  if (wake_pipe_[0] < 0) return;
  char drain[64];
  while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
  }
}

bool Session::ServeFromPinnedSnapshot(const query::ConsolidationQuery& q,
                                      uint64_t current_epoch) {
  const std::string gone =
      "snapshot epoch " + std::to_string(pinned_epoch_) +
      " superseded by " + std::to_string(current_epoch) +
      "; reconnect for current data";
  if (cache_ == nullptr) {
    return SendError(WireError::kSnapshotGone, StatusCode::kOk, gone);
  }
  Stopwatch watch;
  const query::CanonicalQuery canon = query::CanonicalQuery::From(q);
  // Peek, not Lookup: a pinned reader must never invalidate the entry
  // current-epoch sessions are serving from.
  std::shared_ptr<const query::GroupedResult> hit =
      cache_->Peek(db_->CacheScope(), pinned_epoch_, canon);
  if (hit == nullptr) {
    return SendError(WireError::kSnapshotGone, StatusCode::kOk,
                     gone + " (not in the pinned result cache)");
  }
  ExecutionStats stats;
  stats.seconds = watch.ElapsedSeconds();
  stats.cache_outcome = CacheOutcome::kHit;
  stats.cache_source_rows = hit->num_groups();
  if (m_query_micros_ != nullptr) {
    m_query_micros_->Record(static_cast<uint64_t>(stats.seconds * 1e6));
  }
  ResultReply reply;
  reply.engine = "cache";
  reply.plan_reason = "pinned-epoch snapshot served from result cache";
  reply.stats_json = stats.ToJson();
  reply.agg = static_cast<uint8_t>(q.agg);
  reply.result = *hit;
  return SendResult(std::move(reply));
}

bool Session::SendFrame(FrameType type, std::string_view payload) {
  return SendAll(fd_, EncodeFrame(type, payload)).ok();
}

bool Session::SendError(WireError error, StatusCode code,
                        std::string message) {
  // Only query-level failures count as failed queries; protocol errors and
  // busy/shutdown replies have their own counters.
  if (error == WireError::kQueryFailed || error == WireError::kSnapshotGone ||
      error == WireError::kResultTooLarge) {
    counters_->queries_failed.fetch_add(1, std::memory_order_relaxed);
    if (m_errors_ != nullptr) m_errors_->Increment();
  }
  ErrorReply reply;
  reply.error = error;
  reply.status_code = code;
  reply.message = std::move(message);
  return SendFrame(FrameType::kError, EncodeErrorReply(reply));
}

bool Session::SendTokenStatus(const Status& st, bool shed_by_admission) {
  if (st.IsCancelled()) {
    counters_->cancelled.fetch_add(1, std::memory_order_relaxed);
    if (m_cancelled_ != nullptr) m_cancelled_->Increment();
    return SendError(WireError::kCancelled, StatusCode::kCancelled,
                     st.message());
  }
  counters_->timeouts.fetch_add(1, std::memory_order_relaxed);
  if (m_timeouts_ != nullptr) m_timeouts_->Increment();
  if (shed_by_admission) {
    counters_->shed_expired.fetch_add(1, std::memory_order_relaxed);
  }
  return SendError(WireError::kQueryTimeout, StatusCode::kDeadlineExceeded,
                   st.message());
}

bool Session::SendResult(ResultReply reply) {
  // Replies are canonically sorted so the same query yields byte-identical
  // frames regardless of engine, thread count or cache outcome.
  reply.result.SortCanonical();
  const std::string payload = EncodeResultReply(reply);
  if (payload.size() > kMaxFramePayload) {
    return SendError(WireError::kResultTooLarge, StatusCode::kOk,
                     "result payload of " + std::to_string(payload.size()) +
                         " bytes exceeds the frame limit");
  }
  counters_->queries_ok.fetch_add(1, std::memory_order_relaxed);
  return SendFrame(FrameType::kResult, payload);
}

}  // namespace paradise::server
