#include "server/session.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/stopwatch.h"
#include "query/planner.h"
#include "query/result_cache.h"
#include "query/sql.h"
#include "schema/database.h"
#include "server/net_util.h"

namespace paradise::server {

namespace {

/// A slot from the admission controller, released on scope exit.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(AdmissionController* admission)
      : admission_(admission), outcome_(admission->Acquire()) {}
  ~AdmissionSlot() {
    if (outcome_ == AdmissionController::Outcome::kAdmitted) {
      admission_->Release();
    }
  }
  AdmissionController::Outcome outcome() const { return outcome_; }

 private:
  AdmissionController* const admission_;
  const AdmissionController::Outcome outcome_;
};

}  // namespace

Session::Session(int fd, Database* db,
                 query::ConsolidationResultCache* cache,
                 AdmissionController* admission, SessionOptions options,
                 ServerCounters* counters)
    : fd_(fd),
      db_(db),
      cache_(cache),
      admission_(admission),
      options_(options),
      counters_(counters) {
  if (options_.metrics_enabled) {
    MetricsRegistry& registry = MetricsRegistry::Default();
    m_queries_ = registry.GetCounter("server.queries");
    m_errors_ = registry.GetCounter("server.query_errors");
    m_query_micros_ = registry.GetHistogram("server.query_micros");
  }
}

void Session::Run() {
  SetTcpNoDelay(fd_);
  pinned_epoch_ = db_->commit_epoch();
  HelloReply hello;
  hello.protocol_version = kProtocolVersion;
  hello.pinned_epoch = pinned_epoch_;
  hello.cube_name = db_->schema().cube_name;
  if (!SendFrame(FrameType::kHello, EncodeHello(hello))) return;

  FrameDecoder decoder;
  char buf[64 * 1024];
  for (;;) {
    for (;;) {
      Result<std::optional<Frame>> next = decoder.Next();
      if (!next.ok()) {
        // Malformed stream (bad magic / flipped header / oversized length):
        // one typed reply, best effort, then a clean close.
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendError(WireError::kBadRequest, StatusCode::kOk,
                  next.status().message());
        return;
      }
      if (!next->has_value()) break;
      if (!HandleFrame(**next)) return;
    }
    const ssize_t n = RecvSome(fd_, buf, sizeof(buf));
    if (n <= 0) return;  // disconnect (0) or socket error/shutdown (<0)
    decoder.Append(buf, static_cast<size_t>(n));
  }
}

bool Session::HandleFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kPing:
      return SendFrame(FrameType::kPong, "");
    case FrameType::kQuery: {
      Result<QueryRequest> request = DecodeQueryRequest(frame.payload);
      if (!request.ok()) {
        counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
        SendError(WireError::kBadRequest, request.status().code(),
                  request.status().message());
        return false;
      }
      return HandleQuery(*request);
    }
    case FrameType::kHello:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kPong:
      // Server-to-client frame types are never valid requests.
      counters_->protocol_errors.fetch_add(1, std::memory_order_relaxed);
      SendError(WireError::kBadRequest, StatusCode::kOk,
                "unexpected frame type from client");
      return false;
  }
  return false;
}

bool Session::HandleQuery(const QueryRequest& request) {
  AdmissionSlot slot(admission_);
  switch (slot.outcome()) {
    case AdmissionController::Outcome::kBusy:
      counters_->busy_replies.fetch_add(1, std::memory_order_relaxed);
      // The connection stays open: busy is a retryable condition.
      return SendError(WireError::kServerBusy, StatusCode::kOk,
                       "admission queue full; retry");
    case AdmissionController::Outcome::kShutdown:
      SendError(WireError::kShuttingDown, StatusCode::kOk,
                "server shutting down");
      return false;
    case AdmissionController::Outcome::kAdmitted:
      break;
  }
  if (m_queries_ != nullptr) m_queries_->Increment();
  Stopwatch watch;
  if (options_.artificial_query_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.artificial_query_delay_ms));
  }

  Result<query::ConsolidationQuery> compiled =
      query::CompileSql(request.sql, db_->schema());
  if (!compiled.ok()) {
    return SendError(WireError::kQueryFailed, compiled.status().code(),
                     compiled.status().message());
  }
  const query::ConsolidationQuery& q = *compiled;

  EngineKind kind = EngineKind::kArray;
  std::string plan_reason;
  if (request.engine != 0) {
    const uint8_t raw = static_cast<uint8_t>(request.engine - 1);
    if (raw > static_cast<uint8_t>(EngineKind::kBTreeSelect)) {
      return SendError(WireError::kBadRequest, StatusCode::kInvalidArgument,
                       "unknown engine id " + std::to_string(request.engine));
    }
    kind = static_cast<EngineKind>(raw);
  } else {
    Result<PlanChoice> plan = ChoosePlan(*db_, q);
    if (!plan.ok()) {
      return SendError(WireError::kQueryFailed, plan.status().code(),
                       plan.status().message());
    }
    kind = plan->engine;
    plan_reason = std::move(plan->reason);
  }

  RunQueryOptions run_options;
  // The cold-buffer drop is a single-client benchmarking protocol; a server
  // evicting shared pages under concurrent readers would be pathological,
  // so every server-side query runs warm.
  run_options.cold = false;
  run_options.num_threads = std::clamp<size_t>(
      request.num_threads, 1, std::max<size_t>(1, options_.max_query_threads));
  run_options.trace = request.trace;

  const uint64_t current_epoch = db_->commit_epoch();
  if (current_epoch != pinned_epoch_) {
    return ServeFromPinnedSnapshot(q, current_epoch);
  }
  if (cache_ != nullptr && !request.no_cache) {
    run_options.cache = cache_;
    // Pin cache reads/inserts to the connect-time epoch: if a checkpoint
    // lands mid-query, the result is filed under the epoch it was computed
    // against instead of poisoning the new one.
    run_options.cache_pin_epoch = pinned_epoch_;
  }

  Result<Execution> exec = RunQuery(db_, kind, q, run_options);
  if (!exec.ok()) {
    return SendError(WireError::kQueryFailed, exec.status().code(),
                     exec.status().message());
  }
  if (m_query_micros_ != nullptr) {
    m_query_micros_->Record(
        static_cast<uint64_t>(watch.ElapsedSeconds() * 1e6));
  }

  ResultReply reply;
  reply.engine = std::string(EngineKindToString(kind));
  reply.plan_reason = std::move(plan_reason);
  reply.stats_json = exec->stats.ToJson();
  reply.agg = static_cast<uint8_t>(q.agg);
  reply.result = std::move(exec->result);
  return SendResult(std::move(reply));
}

bool Session::ServeFromPinnedSnapshot(const query::ConsolidationQuery& q,
                                      uint64_t current_epoch) {
  const std::string gone =
      "snapshot epoch " + std::to_string(pinned_epoch_) +
      " superseded by " + std::to_string(current_epoch) +
      "; reconnect for current data";
  if (cache_ == nullptr) {
    return SendError(WireError::kSnapshotGone, StatusCode::kOk, gone);
  }
  Stopwatch watch;
  const query::CanonicalQuery canon = query::CanonicalQuery::From(q);
  // Peek, not Lookup: a pinned reader must never invalidate the entry
  // current-epoch sessions are serving from.
  std::shared_ptr<const query::GroupedResult> hit =
      cache_->Peek(db_->CacheScope(), pinned_epoch_, canon);
  if (hit == nullptr) {
    return SendError(WireError::kSnapshotGone, StatusCode::kOk,
                     gone + " (not in the pinned result cache)");
  }
  ExecutionStats stats;
  stats.seconds = watch.ElapsedSeconds();
  stats.cache_outcome = CacheOutcome::kHit;
  stats.cache_source_rows = hit->num_groups();
  if (m_query_micros_ != nullptr) {
    m_query_micros_->Record(static_cast<uint64_t>(stats.seconds * 1e6));
  }
  ResultReply reply;
  reply.engine = "cache";
  reply.plan_reason = "pinned-epoch snapshot served from result cache";
  reply.stats_json = stats.ToJson();
  reply.agg = static_cast<uint8_t>(q.agg);
  reply.result = *hit;
  return SendResult(std::move(reply));
}

bool Session::SendFrame(FrameType type, std::string_view payload) {
  return SendAll(fd_, EncodeFrame(type, payload)).ok();
}

bool Session::SendError(WireError error, StatusCode code,
                        std::string message) {
  // Only query-level failures count as failed queries; protocol errors and
  // busy/shutdown replies have their own counters.
  if (error == WireError::kQueryFailed || error == WireError::kSnapshotGone ||
      error == WireError::kResultTooLarge) {
    counters_->queries_failed.fetch_add(1, std::memory_order_relaxed);
    if (m_errors_ != nullptr) m_errors_->Increment();
  }
  ErrorReply reply;
  reply.error = error;
  reply.status_code = code;
  reply.message = std::move(message);
  return SendFrame(FrameType::kError, EncodeErrorReply(reply));
}

bool Session::SendResult(ResultReply reply) {
  // Replies are canonically sorted so the same query yields byte-identical
  // frames regardless of engine, thread count or cache outcome.
  reply.result.SortCanonical();
  const std::string payload = EncodeResultReply(reply);
  if (payload.size() > kMaxFramePayload) {
    return SendError(WireError::kResultTooLarge, StatusCode::kOk,
                     "result payload of " + std::to_string(payload.size()) +
                         " bytes exceeds the frame limit");
  }
  counters_->queries_ok.fetch_add(1, std::memory_order_relaxed);
  return SendFrame(FrameType::kResult, payload);
}

}  // namespace paradise::server
