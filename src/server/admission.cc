#include "server/admission.h"

#include <algorithm>

#include "common/metrics.h"

namespace paradise::server {

namespace {
AdmissionOptions Sanitize(AdmissionOptions options) {
  options.max_inflight = std::max<size_t>(1, options.max_inflight);
  return options;
}
}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(Sanitize(options)) {
  if (options_.metrics_enabled) {
    MetricsRegistry& registry = MetricsRegistry::Default();
    m_admitted_ = registry.GetCounter("server.admitted");
    m_busy_ = registry.GetCounter("server.busy_rejections");
    m_shed_expired_ = registry.GetCounter("admission.shed_expired");
    m_inflight_ = registry.GetGauge("server.inflight");
    m_queued_ = registry.GetGauge("server.queued");
  }
}

AdmissionController::Outcome AdmissionController::Acquire(
    const CancellationToken* token) {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) return Outcome::kShutdown;
  if (token != nullptr && token->cancel_requested()) return Outcome::kCancelled;
  if (token != nullptr && token->expired()) {
    // Already dead on arrival — shed before taking a slot or queue spot.
    ++shed_expired_;
    if (m_shed_expired_ != nullptr) m_shed_expired_->Increment();
    return Outcome::kExpired;
  }
  // Fast path only when nobody is queued ahead of us — a freed slot goes to
  // the oldest waiter, not to whoever races in next.
  if (queued_ == 0 && inflight_ < options_.max_inflight) {
    ++inflight_;
    ++admitted_;
    if (m_inflight_ != nullptr) m_inflight_->Set(static_cast<int64_t>(inflight_));
    if (m_admitted_ != nullptr) m_admitted_->Increment();
    return Outcome::kAdmitted;
  }
  if (queued_ >= options_.max_queued) {
    ++busy_rejections_;
    if (m_busy_ != nullptr) m_busy_->Increment();
    return Outcome::kBusy;
  }
  ++queued_;
  if (m_queued_ != nullptr) m_queued_->Set(static_cast<int64_t>(queued_));
  const auto pred = [&] {
    return shutdown_ || inflight_ < options_.max_inflight ||
           (token != nullptr && token->cancel_requested());
  };
  if (token != nullptr && token->has_deadline()) {
    // Wait at most until the deadline; on timeout the query is shed below.
    cv_.wait_until(lock, token->deadline(), pred);
  } else {
    cv_.wait(lock, pred);
  }
  --queued_;
  if (m_queued_ != nullptr) m_queued_->Set(static_cast<int64_t>(queued_));
  if (shutdown_) return Outcome::kShutdown;
  if (token != nullptr &&
      (token->cancel_requested() || token->expired())) {
    const bool was_cancelled = token->cancel_requested();
    if (!was_cancelled) {
      ++shed_expired_;
      if (m_shed_expired_ != nullptr) m_shed_expired_->Increment();
    }
    // Release() wakes exactly one waiter; if that wake landed on us and we
    // are bowing out, pass it along so the free slot is not orphaned.
    if (queued_ > 0 && inflight_ < options_.max_inflight) cv_.notify_one();
    return was_cancelled ? Outcome::kCancelled : Outcome::kExpired;
  }
  ++inflight_;
  ++admitted_;
  if (m_inflight_ != nullptr) m_inflight_->Set(static_cast<int64_t>(inflight_));
  if (m_admitted_ != nullptr) m_admitted_->Increment();
  return Outcome::kAdmitted;
}

void AdmissionController::Poke() { cv_.notify_all(); }

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    if (m_inflight_ != nullptr) m_inflight_->Set(static_cast<int64_t>(inflight_));
  }
  cv_.notify_one();
}

void AdmissionController::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.admitted = admitted_;
  s.busy_rejections = busy_rejections_;
  s.shed_expired = shed_expired_;
  s.inflight = inflight_;
  s.queued = queued_;
  return s;
}

AdmissionOptions AdmissionController::SizedForStorage(
    const StorageOptions& storage) {
  AdmissionOptions options;
  options.max_inflight =
      std::max<size_t>(2, 2 * std::max<size_t>(1, storage.io_pool_threads));
  options.max_queued = 4 * options.max_inflight;
  return options;
}

}  // namespace paradise::server
