#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "server/net_util.h"

namespace paradise::server {

Result<std::unique_ptr<OlapClient>> OlapClient::Connect(
    const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status st = ErrnoStatus("connect " + host + ":" +
                                  std::to_string(port));
    ::close(fd);
    return st;
  }
  SetTcpNoDelay(fd);

  std::unique_ptr<OlapClient> client(new OlapClient(fd));
  PARADISE_ASSIGN_OR_RETURN(Frame frame, client->ReadFrame());
  if (frame.type != FrameType::kHello) {
    return Status::IOError("expected Hello frame, got type " +
                           std::to_string(static_cast<int>(frame.type)));
  }
  PARADISE_ASSIGN_OR_RETURN(client->hello_, DecodeHello(frame.payload));
  if (client->hello_.protocol_version != kProtocolVersion) {
    return Status::NotSupported(
        "server speaks protocol version " +
        std::to_string(client->hello_.protocol_version) + ", client speaks " +
        std::to_string(kProtocolVersion));
  }
  return client;
}

OlapClient::~OlapClient() { Close(); }

void OlapClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status OlapClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  return SendAll(fd_, bytes);
}

Status OlapClient::SendFrame(FrameType type, std::string_view payload) {
  return SendRaw(EncodeFrame(type, payload));
}

Result<Frame> OlapClient::ReadFrame() {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  char buf[64 * 1024];
  for (;;) {
    PARADISE_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder_.Next());
    if (frame.has_value()) return std::move(*frame);
    const ssize_t n = RecvSome(fd_, buf, sizeof(buf));
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) return ErrnoStatus("recv");
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

Result<OlapClient::Reply> OlapClient::Query(const QueryRequest& request) {
  PARADISE_RETURN_IF_ERROR(
      SendFrame(FrameType::kQuery, EncodeQueryRequest(request)));
  PARADISE_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  Reply reply;
  switch (frame.type) {
    case FrameType::kResult: {
      PARADISE_ASSIGN_OR_RETURN(reply.result,
                                DecodeResultReply(frame.payload));
      reply.ok = true;
      return reply;
    }
    case FrameType::kError: {
      PARADISE_ASSIGN_OR_RETURN(reply.error, DecodeErrorReply(frame.payload));
      reply.ok = false;
      return reply;
    }
    default:
      return Status::IOError("unexpected reply frame type " +
                             std::to_string(static_cast<int>(frame.type)));
  }
}

Result<OlapClient::Reply> OlapClient::Query(const std::string& sql) {
  QueryRequest request;
  request.sql = sql;
  return Query(request);
}

Status OlapClient::Ping() {
  PARADISE_RETURN_IF_ERROR(SendFrame(FrameType::kPing, ""));
  PARADISE_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != FrameType::kPong || !frame.payload.empty()) {
    return Status::IOError("unexpected Ping reply");
  }
  return Status::OK();
}

}  // namespace paradise::server
