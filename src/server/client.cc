#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "server/net_util.h"

namespace paradise::server {

namespace {

/// One connect() attempt; returns the connected fd or a Status.
Result<int> DialOnce(const std::string& host, uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad server address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status st = ErrnoStatus("connect " + host + ":" +
                                  std::to_string(port));
    ::close(fd);
    return st;
  }
  SetTcpNoDelay(fd);
  return fd;
}

}  // namespace

Result<std::unique_ptr<OlapClient>> OlapClient::Connect(
    const std::string& host, uint16_t port, ClientOptions options) {
  std::unique_ptr<OlapClient> client;
  for (uint32_t attempt = 0;; ++attempt) {
    Result<int> fd = DialOnce(host, port);
    if (fd.ok()) {
      client.reset(new OlapClient(*fd, options));
      break;
    }
    // An invalid address never becomes valid; only retry refused /
    // unreachable dials.
    if (fd.status().IsInvalidArgument() || attempt >= options.connect_retries) {
      return fd.status();
    }
    Random rng(options.retry_seed + attempt);
    const uint64_t shift = std::min<uint32_t>(attempt, 32);
    uint64_t backoff_us = options.backoff_initial_us << shift;
    backoff_us = std::min(std::max<uint64_t>(backoff_us, 1),
                          std::max<uint64_t>(options.backoff_max_us, 1));
    const uint64_t sleep_us = backoff_us / 2 + rng.Uniform(backoff_us / 2 + 1);
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
  }
  PARADISE_ASSIGN_OR_RETURN(Frame frame, client->ReadFrame());
  if (frame.type != FrameType::kHello) {
    return Status::IOError("expected Hello frame, got type " +
                           std::to_string(static_cast<int>(frame.type)));
  }
  PARADISE_ASSIGN_OR_RETURN(client->hello_, DecodeHello(frame.payload));
  if (client->hello_.protocol_version != kProtocolVersion) {
    return Status::NotSupported(
        "server speaks protocol version " +
        std::to_string(client->hello_.protocol_version) + ", client speaks " +
        std::to_string(kProtocolVersion));
  }
  return client;
}

OlapClient::~OlapClient() { Close(); }

void OlapClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status OlapClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  return SendAll(fd_, bytes);
}

Status OlapClient::SendFrame(FrameType type, std::string_view payload) {
  return SendRaw(EncodeFrame(type, payload));
}

Result<Frame> OlapClient::ReadFrame() {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  const bool bounded = options_.call_timeout_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.call_timeout_ms);
  char buf[64 * 1024];
  for (;;) {
    PARADISE_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder_.Next());
    if (frame.has_value()) return std::move(*frame);
    if (bounded) {
      const auto remaining_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now())
              .count();
      const PollWait wait = WaitReadable(
          fd_, static_cast<int>(std::max<int64_t>(0, remaining_ms)));
      if (wait == PollWait::kError) return ErrnoStatus("poll");
      if (wait == PollWait::kTimedOut) {
        // The reply may still arrive later and would desynchronize the next
        // call's framing — poison the connection rather than risk it.
        Close();
        return Status::DeadlineExceeded(
            "no reply within " + std::to_string(options_.call_timeout_ms) +
            " ms; connection closed");
      }
    }
    const ssize_t n = RecvSome(fd_, buf, sizeof(buf));
    if (n == 0) return Status::IOError("server closed the connection");
    if (n < 0) return ErrnoStatus("recv");
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

Result<OlapClient::Reply> OlapClient::Query(const QueryRequest& request) {
  PARADISE_RETURN_IF_ERROR(
      SendFrame(FrameType::kQuery, EncodeQueryRequest(request)));
  PARADISE_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  Reply reply;
  switch (frame.type) {
    case FrameType::kResult: {
      PARADISE_ASSIGN_OR_RETURN(reply.result,
                                DecodeResultReply(frame.payload));
      reply.ok = true;
      return reply;
    }
    case FrameType::kError: {
      PARADISE_ASSIGN_OR_RETURN(reply.error, DecodeErrorReply(frame.payload));
      reply.ok = false;
      return reply;
    }
    default:
      return Status::IOError("unexpected reply frame type " +
                             std::to_string(static_cast<int>(frame.type)));
  }
}

Result<OlapClient::Reply> OlapClient::Query(const std::string& sql) {
  QueryRequest request;
  request.sql = sql;
  return Query(request);
}

Result<OlapClient::Reply> OlapClient::QueryWithRetry(
    const QueryRequest& request) {
  for (uint32_t attempt = 0;; ++attempt) {
    Result<Reply> reply = Query(request);
    // Transport failures and non-busy typed errors return as-is: the server
    // may already have executed the query, so re-sending is not safe.
    if (!reply.ok() || reply->ok ||
        reply->error.error != WireError::kServerBusy ||
        attempt >= options_.busy_retries) {
      return reply;
    }
    BackoffSleep(attempt);
  }
}

Status OlapClient::Cancel() {
  return SendFrame(FrameType::kCancel, "");
}

void OlapClient::BackoffSleep(uint32_t attempt) {
  const uint64_t shift = std::min<uint32_t>(attempt, 32);
  uint64_t backoff_us = options_.backoff_initial_us << shift;
  backoff_us = std::min(std::max<uint64_t>(backoff_us, 1),
                        std::max<uint64_t>(options_.backoff_max_us, 1));
  // ±50% jitter keeps a fleet of rejected clients from re-arriving at once.
  const uint64_t sleep_us = backoff_us / 2 + rng_.Uniform(backoff_us / 2 + 1);
  std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
}

Status OlapClient::Ping() {
  PARADISE_RETURN_IF_ERROR(SendFrame(FrameType::kPing, ""));
  PARADISE_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.type != FrameType::kPong || !frame.payload.empty()) {
    return Status::IOError("unexpected Ping reply");
  }
  return Status::OK();
}

}  // namespace paradise::server
