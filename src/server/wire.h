// The olapd wire protocol: length-prefixed frames carrying SQL requests and
// serialized GroupedResult replies, so the query stack can be driven by
// remote clients (ROADMAP item 1 — the serving layer that makes "heavy
// traffic" measurable). Modeled on the classic framed key/value protocols:
// a fixed 12-byte header (magic, payload length, frame type) followed by a
// type-specific payload of little-endian fixed-width fields and
// length-prefixed strings.
//
// Frame layout (all integers little-endian):
//
//   offset 0  u32  magic          kWireMagic ("OLPQ")
//   offset 4  u32  payload_len    <= max payload (kMaxFramePayload default)
//   offset 8  u8   type           FrameType
//   offset 9  u8[3] pad           must be zero
//   offset 12 ...  payload
//
// The pad bytes double as cheap corruption tripwires: a bit-flipped header
// fails decoding instead of desynchronizing the stream. Payload decoding is
// fully bounds-checked and rejects trailing garbage, so a malformed frame
// yields a typed error (never a crash, hang, or over-read) — the contract
// tests/server_protocol_test.cc sweeps.
//
// Conversation:
//   server → client   kHello                    (once, on accept)
//   client → server   kQuery | kPing
//   server → client   kResult | kError | kPong  (one reply per request)
//   client → server   kCancel                   (anytime; no reply of its own)
//
// kCancel asks the server to abandon the in-flight query: the pending
// kQuery still gets exactly one reply — either kResult (the query won the
// race) or kError CANCELLED. A kCancel with no query in flight is ignored,
// so a cancel that loses the race is harmless.
//
// Engine errors cross the wire typed: ErrorReply carries the WireError
// class, the engine's StatusCode, and the engine's message verbatim, so a
// client can reconstruct the exact Status a local RunSql would have
// returned (asserted by tests/sql_test.cc).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "query/result.h"

namespace paradise::server {

/// "OLPQ" when the header is viewed as bytes.
inline constexpr uint32_t kWireMagic = 0x51504C4Fu;
inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 12;
/// Default ceiling on one frame's payload; both sides reject bigger frames
/// before buffering them.
inline constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : uint8_t {
  kHello = 1,   // server → client: protocol version, pinned epoch, cube name
  kQuery = 2,   // client → server: SQL + execution options
  kResult = 3,  // server → client: stats JSON + serialized GroupedResult
  kError = 4,   // server → client: typed error
  kPing = 5,    // client → server: empty payload
  kPong = 6,    // server → client: empty payload
  kCancel = 7,  // client → server: empty payload; abandon the in-flight query
};

/// True for frame-type byte values defined above.
bool IsKnownFrameType(uint8_t type);

/// Error classes a server reply can carry. kQueryFailed wraps the engine's
/// own Status (code + message preserved verbatim); the others are
/// server-side conditions with no engine Status behind them.
enum class WireError : uint8_t {
  /// Malformed frame or request payload; the connection closes after this.
  kBadRequest = 1,
  /// Compile/plan/execution failed; status_code/message carry the cause.
  kQueryFailed = 2,
  /// Admission-control overflow: in-flight limit and wait queue both full.
  /// The connection stays open — retry after a backoff.
  kServerBusy = 3,
  /// The session's pinned commit epoch was superseded and the result is not
  /// in the epoch-pinned cache; reconnect to read current data.
  kSnapshotGone = 4,
  /// Server is stopping; the connection closes after this.
  kShuttingDown = 5,
  /// The result exceeds the maximum frame payload.
  kResultTooLarge = 6,
  /// The query's deadline (client deadline_ms, capped by the server-wide
  /// default) expired — while queued or mid-execution. The connection stays
  /// open; status_code is kDeadlineExceeded.
  kQueryTimeout = 7,
  /// The client sent kCancel (or disconnected) and the query was abandoned
  /// at a chunk boundary. status_code is kCancelled.
  kCancelled = 8,
};

std::string_view WireErrorToString(WireError e);

struct Frame {
  FrameType type = FrameType::kPing;
  std::string payload;
};

/// One wire-ready frame (header + payload). `payload` must fit the default
/// payload ceiling; oversized input is a programming error upstream (the
/// session guards results with kResultTooLarge before encoding).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Incremental frame parser over a byte stream. Feed whatever recv()
/// returned; Next() yields complete frames in order. A malformed header
/// (bad magic, unknown type, nonzero pad, oversized length) returns a
/// Corruption status, after which the stream is unrecoverable and the
/// connection must be dropped.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  void Append(const char* data, size_t n) { buffer_.append(data, n); }

  /// A complete frame, std::nullopt when more bytes are needed, or
  /// Corruption on a malformed stream.
  Result<std::optional<Frame>> Next();

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  const size_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;  // bytes of buffer_ already returned as frames
};

// --- typed payloads --------------------------------------------------------

/// First frame of every connection, server → client.
struct HelloReply {
  uint32_t protocol_version = kProtocolVersion;
  /// Commit epoch this session is pinned to (see DESIGN.md choice 12).
  uint64_t pinned_epoch = 0;
  std::string cube_name;
};

struct QueryRequest {
  /// 0 = let the planner choose; otherwise EngineKind value + 1.
  uint8_t engine = 0;
  /// Collect an ExecutionTrace into the reply's stats JSON.
  bool trace = false;
  /// Bypass the server's result cache for this query.
  bool no_cache = false;
  /// Array-engine worker threads (clamped by the server). Must be >= 1.
  uint32_t num_threads = 1;
  /// Query deadline in milliseconds from receipt; 0 = none. The server caps
  /// it with its own default_deadline_ms and sheds the query with
  /// QUERY_TIMEOUT once the effective deadline passes.
  uint32_t deadline_ms = 0;
  std::string sql;
};

struct ErrorReply {
  WireError error = WireError::kBadRequest;
  /// StatusCode of the underlying engine error (kOk when there is none,
  /// e.g. SERVER_BUSY).
  StatusCode status_code = StatusCode::kOk;
  /// The engine's message verbatim — error strings survive the wire.
  std::string message;
};

/// Reconstructs the Status a local call would have returned (Internal with
/// the wire-error name when no engine status crossed).
Status ErrorReplyToStatus(const ErrorReply& e);

struct ResultReply {
  /// Engine that produced the result ("array", "bitmap", ...; "cache" when
  /// served from an epoch-pinned snapshot without running an engine).
  std::string engine;
  /// Planner rule trace (empty when the client forced the engine).
  std::string plan_reason;
  /// ExecutionStats::ToJson() of the run.
  std::string stats_json;
  /// AggFunc of the query, so clients can Finalize/print rows.
  uint8_t agg = 0;
  /// Canonically sorted result — byte-stable across engines and runs.
  query::GroupedResult result;
};

std::string EncodeHello(const HelloReply& hello);
Result<HelloReply> DecodeHello(std::string_view payload);

std::string EncodeQueryRequest(const QueryRequest& request);
Result<QueryRequest> DecodeQueryRequest(std::string_view payload);

std::string EncodeErrorReply(const ErrorReply& error);
Result<ErrorReply> DecodeErrorReply(std::string_view payload);

std::string EncodeResultReply(const ResultReply& reply);
Result<ResultReply> DecodeResultReply(std::string_view payload);

/// GroupedResult serialization shared by the reply codec, the golden
/// comparisons in tests, and the bench's divergence check. Layout:
///   u32 num_group_columns, then that many strings
///   u64 num_rows, then per row: num_group_columns × i32 group codes,
///   then AggState as i64 sum, u64 count, i64 min, i64 max.
void AppendGroupedResult(const query::GroupedResult& result, std::string* out);

}  // namespace paradise::server
