// OlapServer: the multi-client serving loop behind tools/olapd. Listens on
// TCP, accepts connections, and runs one Session (server/session.h) per
// connection on its own thread — the thread-per-connection model of the
// WeaselDB exemplar, which is simple, debuggable, and plenty for the
// hundreds of concurrent clients bench_server drives (DESIGN.md choice 12).
//
// The server borrows an open Database; all sessions share its sharded
// buffer pool and I/O pool (PR 3 made that path concurrent), one
// AdmissionController bounding in-flight queries, and one epoch-scoped
// ConsolidationResultCache. Stop() (also run by the destructor) shuts down
// the listener, wakes every blocked session, joins all threads and closes
// all sockets — tests assert the shutdown is clean under TSan.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/admission.h"
#include "server/session.h"

namespace paradise {
class Database;
namespace query {
class ConsolidationResultCache;
}  // namespace query
}  // namespace paradise

namespace paradise::server {

struct ServerOptions {
  std::string host = "127.0.0.1";

  /// 0 = let the OS pick an ephemeral port; read it back via port().
  uint16_t port = 0;

  /// Admission limits; 0 = derive both from the database's
  /// StorageOptions::io_pool_threads (AdmissionController::SizedForStorage).
  size_t max_inflight = 0;
  size_t max_queued = 0;

  /// Upper bound on per-request array-engine worker threads.
  size_t max_query_threads = 8;

  /// Shared consolidation result cache across all sessions (epoch-pinned
  /// lookups keep session snapshots stable; see server/session.h).
  bool enable_result_cache = true;
  size_t cache_byte_budget = 64u << 20;

  /// Mirror server.* counters/gauges/histograms into
  /// MetricsRegistry::Default().
  bool metrics_enabled = false;

  /// Server-wide query deadline cap in ms; 0 = none (server/session.h).
  uint32_t default_deadline_ms = 0;

  /// Socket read timeouts (server/session.h): mid-frame progress budget and
  /// idle budget, both in ms, 0 = unbounded.
  uint32_t read_timeout_ms = 30'000;
  uint32_t idle_timeout_ms = 0;

  /// Test-only: per-query execution delay (server/session.h).
  uint32_t artificial_query_delay_ms = 0;

  int listen_backlog = 128;
};

class OlapServer {
 public:
  /// `db` is borrowed and must outlive the server. It must be fully loaded
  /// (FinishLoad or Open).
  OlapServer(Database* db, ServerOptions options);
  ~OlapServer();

  OlapServer(const OlapServer&) = delete;
  OlapServer& operator=(const OlapServer&) = delete;

  /// Binds, listens and starts the accept thread. Fails with IOError when
  /// the address cannot be bound.
  Status Start();

  /// Stops accepting, wakes and joins every session, closes all sockets.
  /// Idempotent.
  void Stop();

  /// The bound port (useful with options.port == 0). Valid after Start().
  uint16_t port() const { return port_; }
  const std::string& host() const { return options_.host; }

  AdmissionController& admission() { return *admission_; }
  /// Null when options.enable_result_cache is false.
  query::ConsolidationResultCache* cache() { return cache_.get(); }

  struct Stats {
    uint64_t connections = 0;
    uint64_t queries_ok = 0;
    uint64_t queries_failed = 0;
    uint64_t busy_replies = 0;
    uint64_t protocol_errors = 0;
    uint64_t timeouts = 0;
    uint64_t cancelled = 0;
    uint64_t shed_expired = 0;
    uint64_t read_timeouts = 0;
  };
  Stats stats() const;

 private:
  /// One accepted connection: its socket, session thread, and a done flag
  /// the reaper polls. fd transitions to -1 exactly once, under mu_.
  struct Connection {
    explicit Connection(int fd_in) : fd(fd_in) {}
    int fd;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void RunSession(Connection* conn);
  /// Joins and erases finished connections (called from the accept loop).
  void ReapFinishedLocked();

  Database* const db_;
  const ServerOptions options_;
  SessionOptions session_options_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<query::ConsolidationResultCache> cache_;
  ServerCounters counters_;

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;  // guards connections_ and every Connection::fd close
  std::vector<std::unique_ptr<Connection>> connections_;
};

}  // namespace paradise::server
