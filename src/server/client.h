// OlapClient: a small blocking client for the olapd wire protocol — the
// library behind tools/olapq, bench/bench_server and the server tests. One
// connection, one request in flight at a time; replies are fully decoded
// into typed structs. Transport problems (socket errors, malformed frames,
// unexpected disconnects) surface as a non-OK Status; server-side
// conditions (engine errors, SERVER_BUSY, SNAPSHOT_GONE) arrive as a
// decoded ErrorReply inside an OK Reply, so callers can distinguish "the
// wire broke" from "the server answered no".
//
// Resilience (DESIGN.md choice 13): ClientOptions adds a per-call reply
// timeout, connect retries, and QueryWithRetry — exponential backoff with
// jitter on the two failures known to be safe to retry (typed SERVER_BUSY,
// connect refusal). A transport error mid-reply is never retried: the
// server may have executed the query, and this client cannot tell.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "server/wire.h"

namespace paradise::server {

struct ClientOptions {
  /// Per-call budget (ms) for each blocking reply read (Query/Ping/Hello);
  /// 0 = wait forever. On expiry the call fails with kDeadlineExceeded and
  /// the connection is closed — the server's reply may still be in flight,
  /// so the stream can no longer be trusted for a next request.
  uint32_t call_timeout_ms = 0;

  /// Extra connect() attempts after the first fails (connection refused /
  /// unreachable), each preceded by a backoff sleep. 0 = fail fast.
  uint32_t connect_retries = 0;

  /// Extra attempts QueryWithRetry makes after a typed SERVER_BUSY reply.
  /// 0 = QueryWithRetry behaves exactly like Query.
  uint32_t busy_retries = 0;

  /// Exponential backoff between retries: attempt k sleeps around
  /// backoff_initial_us << k, capped at backoff_max_us, with ±50% jitter so
  /// a fleet of busy-looped clients does not retry in lockstep.
  uint64_t backoff_initial_us = 200;
  uint64_t backoff_max_us = 50'000;

  /// Seed for the jitter PRNG (common/random.h) — deterministic tests.
  uint64_t retry_seed = 42;
};

class OlapClient {
 public:
  /// Connects and consumes the Hello frame (pinned epoch, cube name).
  /// Retries refused connections options.connect_retries times.
  static Result<std::unique_ptr<OlapClient>> Connect(
      const std::string& host, uint16_t port, ClientOptions options = {});

  ~OlapClient();

  OlapClient(const OlapClient&) = delete;
  OlapClient& operator=(const OlapClient&) = delete;

  /// One server answer: exactly one of `result` / `error` is meaningful.
  struct Reply {
    bool ok = false;      // true = kResult, false = kError
    ResultReply result;   // valid when ok
    ErrorReply error;     // valid when !ok
  };

  /// Sends one query and blocks for the reply. Status is non-OK only for
  /// transport failures; typed server errors come back in Reply::error.
  Result<Reply> Query(const QueryRequest& request);

  /// Convenience: SQL with default request options.
  Result<Reply> Query(const std::string& sql);

  /// Query, retrying typed SERVER_BUSY replies up to options.busy_retries
  /// times with exponential backoff + jitter. Anything else — success, a
  /// different typed error, or a transport failure — returns immediately:
  /// after a transport failure mid-reply the query may already have run,
  /// and blind re-submission is not idempotent-safe.
  Result<Reply> QueryWithRetry(const QueryRequest& request);

  /// Sends a kCancel frame for the in-flight query (best effort; fire and
  /// forget — the cancelled query still gets its one reply, either a typed
  /// CANCELLED or its result if it won the race).
  Status Cancel();

  /// Round-trips a Ping frame.
  Status Ping();

  /// The server's Hello: protocol version, this session's pinned commit
  /// epoch, and the cube name.
  const HelloReply& hello() const { return hello_; }

  /// Sends raw bytes on the socket — for protocol tests that need to speak
  /// malformed frames. Normal callers never need this.
  Status SendRaw(std::string_view bytes);

  /// Reads the next frame (for tests paired with SendRaw). Fails with
  /// IOError on disconnect.
  Result<Frame> ReadFrame();

  void Close();

 private:
  OlapClient(int fd, const ClientOptions& options)
      : fd_(fd), options_(options), rng_(options.retry_seed) {}

  Status SendFrame(FrameType type, std::string_view payload);
  /// Sleeps the backoff for retry attempt `attempt` (0-based): exponential
  /// from backoff_initial_us, capped, with ±50% jitter.
  void BackoffSleep(uint32_t attempt);

  int fd_;
  ClientOptions options_;
  Random rng_;
  FrameDecoder decoder_;
  HelloReply hello_;
};

}  // namespace paradise::server
