// OlapClient: a small blocking client for the olapd wire protocol — the
// library behind tools/olapq, bench/bench_server and the server tests. One
// connection, one request in flight at a time; replies are fully decoded
// into typed structs. Transport problems (socket errors, malformed frames,
// unexpected disconnects) surface as a non-OK Status; server-side
// conditions (engine errors, SERVER_BUSY, SNAPSHOT_GONE) arrive as a
// decoded ErrorReply inside an OK Reply, so callers can distinguish "the
// wire broke" from "the server answered no".
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "server/wire.h"

namespace paradise::server {

class OlapClient {
 public:
  /// Connects and consumes the Hello frame (pinned epoch, cube name).
  static Result<std::unique_ptr<OlapClient>> Connect(const std::string& host,
                                                     uint16_t port);

  ~OlapClient();

  OlapClient(const OlapClient&) = delete;
  OlapClient& operator=(const OlapClient&) = delete;

  /// One server answer: exactly one of `result` / `error` is meaningful.
  struct Reply {
    bool ok = false;      // true = kResult, false = kError
    ResultReply result;   // valid when ok
    ErrorReply error;     // valid when !ok
  };

  /// Sends one query and blocks for the reply. Status is non-OK only for
  /// transport failures; typed server errors come back in Reply::error.
  Result<Reply> Query(const QueryRequest& request);

  /// Convenience: SQL with default request options.
  Result<Reply> Query(const std::string& sql);

  /// Round-trips a Ping frame.
  Status Ping();

  /// The server's Hello: protocol version, this session's pinned commit
  /// epoch, and the cube name.
  const HelloReply& hello() const { return hello_; }

  /// Sends raw bytes on the socket — for protocol tests that need to speak
  /// malformed frames. Normal callers never need this.
  Status SendRaw(std::string_view bytes);

  /// Reads the next frame (for tests paired with SendRaw). Fails with
  /// IOError on disconnect.
  Result<Frame> ReadFrame();

  void Close();

 private:
  explicit OlapClient(int fd) : fd_(fd) {}

  Status SendFrame(FrameType type, std::string_view payload);

  int fd_;
  FrameDecoder decoder_;
  HelloReply hello_;
};

}  // namespace paradise::server
