// Session: one connected client, driven by a dedicated thread (the
// WeaselDB-style thread-per-connection model the ROADMAP names). The
// session speaks the framed protocol of server/wire.h over a borrowed
// socket, runs queries through the shared engine entry points, and owns the
// connection's snapshot semantics:
//
//   * Epoch pinning. At connect time the session records the database's
//     commit epoch and sends it in the Hello frame. While the database
//     stays at that epoch, queries run normally (result-cache reads and
//     inserts pinned to it via RunQueryOptions::cache_pin_epoch, so a
//     concurrent checkpoint can never poison a newer epoch's cache). Once
//     the epoch moves on, the session serves only answers still present in
//     the epoch-pinned result cache — results stay stable across cache
//     invalidation — and reports SNAPSHOT_GONE for anything else, telling
//     the client to reconnect for current data.
//   * Admission. Every query passes the shared AdmissionController first;
//     overflow becomes a typed SERVER_BUSY reply on a connection that stays
//     open, never a stalled or dropped request.
//   * Robustness. A malformed frame or payload yields one typed BAD_REQUEST
//     reply (best effort) followed by a clean close; engine errors cross
//     the wire with their StatusCode and message verbatim and leave the
//     connection usable.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "query/engine.h"
#include "server/admission.h"
#include "server/wire.h"

namespace paradise {
class Counter;
class Histogram;
class Database;
namespace query {
class ConsolidationResultCache;
}  // namespace query
}  // namespace paradise

namespace paradise::server {

/// Shared whole-server tallies every session reports into (atomics; the
/// server snapshots them for OlapServer::stats()).
struct ServerCounters {
  std::atomic<uint64_t> connections{0};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<uint64_t> queries_failed{0};
  std::atomic<uint64_t> busy_replies{0};
  std::atomic<uint64_t> protocol_errors{0};
};

struct SessionOptions {
  /// Upper bound on per-request array-engine worker threads.
  size_t max_query_threads = 8;

  /// Test-only: sleep this long inside each admitted query, so admission
  /// overflow and queue draining can be exercised deterministically.
  uint32_t artificial_query_delay_ms = 0;

  /// Mirror per-query events into MetricsRegistry::Default() ("server.*").
  bool metrics_enabled = false;
};

class Session {
 public:
  /// `fd` is borrowed — the server shuts it down to interrupt Run() and
  /// closes it after the session thread is joined.
  Session(int fd, Database* db, query::ConsolidationResultCache* cache,
          AdmissionController* admission, SessionOptions options,
          ServerCounters* counters);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Serves the connection until the peer disconnects, the stream turns
  /// malformed, or the server shuts the socket down.
  void Run();

  uint64_t pinned_epoch() const { return pinned_epoch_; }

 private:
  /// False = close the connection after this frame.
  bool HandleFrame(const Frame& frame);
  bool HandleQuery(const QueryRequest& request);

  /// Serves a query whose session epoch was superseded: only the pinned
  /// result-cache snapshot may answer; anything else is SNAPSHOT_GONE.
  bool ServeFromPinnedSnapshot(const query::ConsolidationQuery& q,
                               uint64_t current_epoch);

  bool SendFrame(FrameType type, std::string_view payload);
  bool SendError(WireError error, StatusCode code, std::string message);
  bool SendResult(ResultReply reply);

  const int fd_;
  Database* const db_;
  query::ConsolidationResultCache* const cache_;  // null = caching off
  AdmissionController* const admission_;
  const SessionOptions options_;
  ServerCounters* const counters_;

  uint64_t pinned_epoch_ = 0;

  // Registry handles, null unless options_.metrics_enabled.
  Counter* m_queries_ = nullptr;
  Counter* m_errors_ = nullptr;
  Histogram* m_query_micros_ = nullptr;
};

}  // namespace paradise::server
