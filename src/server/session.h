// Session: one connected client, driven by a dedicated thread (the
// WeaselDB-style thread-per-connection model the ROADMAP names). The
// session speaks the framed protocol of server/wire.h over a borrowed
// socket, runs queries through the shared engine entry points, and owns the
// connection's snapshot semantics:
//
//   * Epoch pinning. At connect time the session records the database's
//     commit epoch and sends it in the Hello frame. While the database
//     stays at that epoch, queries run normally (result-cache reads and
//     inserts pinned to it via RunQueryOptions::cache_pin_epoch, so a
//     concurrent checkpoint can never poison a newer epoch's cache). Once
//     the epoch moves on, the session serves only answers still present in
//     the epoch-pinned result cache — results stay stable across cache
//     invalidation — and reports SNAPSHOT_GONE for anything else, telling
//     the client to reconnect for current data.
//   * Admission. Every query passes the shared AdmissionController first;
//     overflow becomes a typed SERVER_BUSY reply on a connection that stays
//     open, never a stalled or dropped request.
//   * Robustness. A malformed frame or payload yields one typed BAD_REQUEST
//     reply (best effort) followed by a clean close; engine errors cross
//     the wire with their StatusCode and message verbatim and leave the
//     connection usable.
//   * Deadlines and cancellation (DESIGN.md choice 13). Each query carries a
//     CancellationToken armed from the request's deadline_ms capped by the
//     server-wide default. While the query runs, a watcher thread keeps
//     reading the socket: a kCancel frame (or a vanished peer) flips the
//     token, which admission waits and the engines' chunk loops observe.
//     The query stops within one chunk's work and the client gets a typed
//     QUERY_TIMEOUT / CANCELLED reply on a connection that stays open.
//   * Socket timeouts (slow-loris protection). Reads are poll-bounded: a
//     partially received frame must make progress within read_timeout_ms
//     and an idle connection may be reaped after idle_timeout_ms; either
//     expiry closes the connection without tying up the session thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "query/engine.h"
#include "server/admission.h"
#include "server/wire.h"

namespace paradise {
class Counter;
class Histogram;
class Database;
namespace query {
class ConsolidationResultCache;
}  // namespace query
}  // namespace paradise

namespace paradise::server {

/// Shared whole-server tallies every session reports into (atomics; the
/// server snapshots them for OlapServer::stats()).
struct ServerCounters {
  std::atomic<uint64_t> connections{0};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<uint64_t> queries_failed{0};
  std::atomic<uint64_t> busy_replies{0};
  std::atomic<uint64_t> protocol_errors{0};
  /// Queries shed or aborted because their deadline passed (QUERY_TIMEOUT).
  std::atomic<uint64_t> timeouts{0};
  /// Queries abandoned on a client kCancel or disconnect (CANCELLED).
  std::atomic<uint64_t> cancelled{0};
  /// Of `timeouts`, those shed by admission before taking a slot.
  std::atomic<uint64_t> shed_expired{0};
  /// Connections reaped by the per-read / idle socket timeouts.
  std::atomic<uint64_t> read_timeouts{0};
};

struct SessionOptions {
  /// Upper bound on per-request array-engine worker threads.
  size_t max_query_threads = 8;

  /// Server-wide deadline cap in milliseconds; 0 = none. A request's
  /// deadline_ms is capped by this, and a request without one gets exactly
  /// this. The effective deadline is enforced in admission (shed while
  /// queued) and at the engines' chunk boundaries.
  uint32_t default_deadline_ms = 0;

  /// A partially received frame must make read progress at least this
  /// often or the connection is closed (slow-loris protection). 0 = wait
  /// forever.
  uint32_t read_timeout_ms = 30'000;

  /// Close connections idle (no frame in progress) this long. 0 = keep
  /// idle connections forever (the default — idling is legitimate).
  uint32_t idle_timeout_ms = 0;

  /// Test-only: sleep this long inside each admitted query (in token-aware
  /// 1 ms slices), so admission overflow, deadlines and cancels can be
  /// exercised deterministically.
  uint32_t artificial_query_delay_ms = 0;

  /// Mirror per-query events into MetricsRegistry::Default() ("server.*").
  bool metrics_enabled = false;
};

class Session {
 public:
  /// `fd` is borrowed — the server shuts it down to interrupt Run() and
  /// closes it after the session thread is joined.
  Session(int fd, Database* db, query::ConsolidationResultCache* cache,
          AdmissionController* admission, SessionOptions options,
          ServerCounters* counters);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  ~Session();

  /// Serves the connection until the peer disconnects, the stream turns
  /// malformed, a socket timeout fires, or the server shuts the socket
  /// down.
  void Run();

  uint64_t pinned_epoch() const { return pinned_epoch_; }

 private:
  /// False = close the connection after this frame.
  bool HandleFrame(const Frame& frame);
  bool HandleQuery(const QueryRequest& request);
  /// The admitted-query body; `token` carries the effective deadline and is
  /// flipped by the cancel watcher.
  bool ExecuteQuery(const QueryRequest& request, CancellationToken* token);

  /// Runs on the watcher thread for one query's lifetime: keeps reading the
  /// socket so kCancel / peer-disconnect can stop work already running.
  /// Non-cancel frames are queued for the main loop (pipelining keeps its
  /// pre-watcher semantics). Synchronization with the session thread is by
  /// thread start/join only — the session thread never touches decoder_ or
  /// pending_frames_ while the watcher runs.
  void WatchForCancel(CancellationToken* token,
                      const std::atomic<bool>* stop);
  /// Decodes buffered frames; kCancel flips the token, the rest go to
  /// pending_frames_. False = stop watching (corrupt stream).
  bool DrainFramesForCancel(CancellationToken* token);
  void WakeWatcher();
  void DrainWakePipe();

  /// Serves a query whose session epoch was superseded: only the pinned
  /// result-cache snapshot may answer; anything else is SNAPSHOT_GONE.
  bool ServeFromPinnedSnapshot(const query::ConsolidationQuery& q,
                               uint64_t current_epoch);

  bool SendFrame(FrameType type, std::string_view payload);
  bool SendError(WireError error, StatusCode code, std::string message);
  /// Maps a token's typed Status (kDeadlineExceeded / kCancelled) to its
  /// wire reply, bumping the matching counters. `shed_by_admission` marks
  /// timeouts that never took an execution slot.
  bool SendTokenStatus(const Status& st, bool shed_by_admission = false);
  bool SendResult(ResultReply reply);

  const int fd_;
  Database* const db_;
  query::ConsolidationResultCache* const cache_;  // null = caching off
  AdmissionController* const admission_;
  const SessionOptions options_;
  ServerCounters* const counters_;

  uint64_t pinned_epoch_ = 0;

  /// Stream state shared (by turns, never concurrently) between the main
  /// loop and the cancel watcher.
  FrameDecoder decoder_;
  std::vector<Frame> pending_frames_;

  /// Self-pipe waking the watcher's poll() instantly at query end, so the
  /// per-query watcher costs no trailing latency. {-1,-1} when pipe2
  /// failed; the watcher then falls back to a short poll timeout.
  int wake_pipe_[2] = {-1, -1};

  // Registry handles, null unless options_.metrics_enabled.
  Counter* m_queries_ = nullptr;
  Counter* m_errors_ = nullptr;
  Counter* m_timeouts_ = nullptr;
  Counter* m_cancelled_ = nullptr;
  Histogram* m_query_micros_ = nullptr;
};

}  // namespace paradise::server
