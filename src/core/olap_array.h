// OlapArray: the paper's OLAP Array ADT (§3). It bundles
//   * the chunked, offset-compressed n-dimensional array of measures,
//   * one B-tree per dimension mapping dimension keys to base array indices,
//   * one B-tree per selectable dimension attribute mapping attribute values
//     to lists of base array indices (the §4.2 "join index" lists),
//   * one IndexToIndexArray per dimension (hierarchy roll-up maps), and
//   * the dimension schemas/names, persisted together in one meta object
//     registered in the database catalog.
// The ADT functions of §3.5 — cell read/write, subset summation, slicing,
// consolidation — live here and in consolidate*.cc / slice.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "array/chunked_array.h"
#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "core/index_to_index.h"
#include "index/btree.h"
#include "relational/dimension_table.h"
#include "storage/storage_manager.h"

namespace paradise {

class OlapArray {
 public:
  /// Builds the ADT from dimension tables plus a stream of
  /// (dimension keys, measure) cells. Array indices are assigned by row
  /// position in each dimension table.
  class Builder {
   public:
    /// `num_measures` parallel cell arrays are built (p >= 1), all sharing
    /// the dimension B-trees, IndexToIndex arrays and chunk layout — the
    /// paper's cells hold the p measures of §2's M = {m_1..m_p}.
    Builder(StorageManager* storage, std::string name,
            std::vector<const DimensionTable*> dims,
            std::vector<uint32_t> chunk_extents, ArrayOptions options,
            size_t num_measures = 1);

    /// Creates the per-dimension B-trees and IndexToIndex arrays. Must be
    /// called once before the first Put.
    Status Init();

    /// Adds the cell addressed by one key per dimension (single measure).
    Status PutByKeys(const std::vector<int32_t>& keys, int64_t value);

    /// Adds the cell's p measure values.
    Status PutByKeys(const std::vector<int32_t>& keys,
                     const std::vector<int64_t>& values);

    /// Adds the cell addressed by base array indices directly.
    Status PutByIndices(const CellCoords& coords, int64_t value);

    /// Writes the arrays, the meta object, and the catalog entry.
    Result<OlapArray> Finish();

   private:
    StorageManager* storage_;
    std::string name_;
    std::vector<const DimensionTable*> dims_;
    std::vector<uint32_t> chunk_extents_;
    ArrayOptions options_;
    size_t num_measures_;
    bool initialized_ = false;

    std::vector<BTree> key_btrees_;
    std::vector<std::vector<PageId>> attr_btree_roots_;  // [dim][col]
    std::vector<IndexToIndexArray> i2i_;
    std::vector<std::unique_ptr<ChunkedArray::Builder>> array_builders_;
  };

  OlapArray() = default;

  /// Opens an ADT previously built under `name`.
  static Result<OlapArray> Open(StorageManager* storage,
                                const std::string& name);

  const std::string& name() const { return name_; }
  size_t num_dims() const { return dim_names_.size(); }
  size_t num_measures() const { return arrays_.size(); }
  const std::string& dim_name(size_t d) const { return dim_names_[d]; }
  const Schema& dim_schema(size_t d) const { return dim_schemas_[d]; }

  /// The cell array for measure `m`.
  const ChunkedArray& array(size_t m = 0) const { return arrays_[m]; }

  const ChunkLayout& layout() const { return arrays_[0].layout(); }
  const IndexToIndexArray& i2i(size_t d) const { return i2i_[d]; }
  StorageManager* storage() const { return storage_; }

  /// Column counts per dimension, in query::ConsolidationQuery::Validate
  /// form.
  std::vector<size_t> DimNumColumns() const;

  /// Base array index of a dimension key (B-tree probe), or nullopt.
  Result<std::optional<uint32_t>> KeyToIndex(size_t d, int32_t key) const;

  /// Base array indices whose attribute `col` equals the normalized value —
  /// one selected value's index list in the §4.2 algorithm.
  Status AttrIndexList(size_t d, size_t col, int64_t normalized_value,
                       std::vector<uint32_t>* out) const;

  /// ADT Read function: measure `m` at the cell addressed by keys, or
  /// nullopt if the cell is invalid.
  Result<std::optional<int64_t>> ReadCellByKeys(
      const std::vector<int32_t>& keys, size_t m = 0) const;

  /// ADT Write function: sets measure `m` at the cell addressed by keys.
  Status WriteCellByKeys(const std::vector<int32_t>& keys, int64_t value,
                         size_t m = 0);

  /// Mutable access for the write path.
  ChunkedArray* mutable_array(size_t m = 0) { return &arrays_[m]; }

  /// Re-serializes the ADT meta (embedding the measures' CURRENT array meta
  /// oids) into a new object and repoints the catalog root at it
  /// copy-on-write. Returns the superseded meta object id; the caller frees
  /// it once the swap is durable. Used by ingest compaction, which replaces
  /// the measure arrays' storage objects wholesale.
  Result<ObjectId> PublishMeta();

 private:
  std::string SerializeMeta() const;

  StorageManager* storage_ = nullptr;
  std::string name_;
  std::vector<std::string> dim_names_;
  std::vector<Schema> dim_schemas_;
  std::vector<BTree> key_btrees_;
  std::vector<std::vector<PageId>> attr_btree_roots_;
  std::vector<IndexToIndexArray> i2i_;
  std::vector<ChunkedArray> arrays_;  // one per measure
};

}  // namespace paradise
