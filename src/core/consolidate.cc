#include "core/consolidate.h"

#include "core/aggregate.h"
#include "core/aggregate_registry.h"

namespace paradise {

namespace {

/// Per-chunk lookup tables: for each grouped dimension, the flat-index
/// contribution of every local coordinate — the "series of array lookups
/// (one for each dimension) and a sum" of §5.5.1.
struct ChunkGroupTables {
  // contribution[g][local] = i2i(level code at base+local) * result stride
  std::vector<std::vector<uint64_t>> contribution;
  // chunk_stride[g] / chunk_dim[g]: decode a chunk offset into the local
  // coordinate of grouped dimension g.
  std::vector<uint32_t> chunk_stride;
  std::vector<uint32_t> chunk_dim;
};

ChunkGroupTables BuildChunkTables(const OlapArray& array,
                                  const GroupSpec& spec, uint64_t chunk_no) {
  const ChunkLayout& layout = array.layout();
  const CellCoords base = layout.ChunkBase(chunk_no);
  const CellCoords cdims = layout.ChunkDims(chunk_no);
  const size_t n = layout.num_dims();

  // Row-major strides of the chunk's local coordinate space.
  std::vector<uint32_t> strides(n);
  uint32_t s = 1;
  for (size_t i = n; i > 0; --i) {
    strides[i - 1] = s;
    s *= cdims[i - 1];
  }

  ChunkGroupTables tables;
  tables.contribution.resize(spec.grouped_dims.size());
  tables.chunk_stride.resize(spec.grouped_dims.size());
  tables.chunk_dim.resize(spec.grouped_dims.size());
  for (size_t g = 0; g < spec.grouped_dims.size(); ++g) {
    const size_t d = spec.grouped_dims[g];
    const IndexToIndexArray& i2i = array.i2i(d);
    tables.chunk_stride[g] = strides[d];
    tables.chunk_dim[g] = cdims[d];
    std::vector<uint64_t>& contrib = tables.contribution[g];
    contrib.resize(cdims[d]);
    for (uint32_t local = 0; local < cdims[d]; ++local) {
      contrib[local] =
          static_cast<uint64_t>(
              i2i.Map(spec.group_cols[g], base[d] + local)) *
          spec.strides[g];
    }
  }
  return tables;
}

}  // namespace

Result<query::GroupedResult> ArrayConsolidate(const OlapArray& array,
                                              const query::ConsolidationQuery& q,
                                              PhaseTimer* timer,
                                              ArrayConsolidateStats* stats,
                                              const CancellationToken* cancel) {
  if (q.HasSelection()) {
    return Status::InvalidArgument(
        "ArrayConsolidate handles no-selection queries; use "
        "ArrayConsolidateWithSelection");
  }
  GroupSpec spec;
  {
    ScopedPhase phase(timer, "prepare");
    PARADISE_ASSIGN_OR_RETURN(spec, GroupSpec::Make(array, q));
  }

  std::vector<query::AggState> flat(spec.num_groups);
  {
    ScopedPhase phase(timer, "scan+aggregate");
    PARADISE_RETURN_IF_ERROR(array.array(q.measure).ScanChunkViews(
        [&](uint64_t chunk_no, const ChunkView& view) -> Status {
          if (cancel != nullptr) {
            PARADISE_RETURN_IF_ERROR(cancel->Check());
          }
          const ChunkGroupTables tables =
              BuildChunkTables(array, spec, chunk_no);
          const size_t groups = tables.contribution.size();
          view.ForEach([&](uint32_t offset, int64_t value) {
            uint64_t flat_idx = 0;
            for (size_t g = 0; g < groups; ++g) {
              const uint32_t local =
                  (offset / tables.chunk_stride[g]) % tables.chunk_dim[g];
              flat_idx += tables.contribution[g][local];
            }
            flat[flat_idx].Add(value);
          });
          if (stats != nullptr) {
            ++stats->chunks_read;
            stats->cells_scanned += view.num_valid();
          }
          return Status::OK();
        }));
  }

  {
    ScopedPhase phase(timer, "emit");
    return FlatToGroupedResult(spec, flat, spec.GroupColumnNames(array));
  }
}

Result<ChunkedArray> MaterializeConsolidation(
    StorageManager* storage, const OlapArray& array,
    const query::ConsolidationQuery& q, const ArrayOptions& options) {
  PARADISE_ASSIGN_OR_RETURN(query::GroupedResult result,
                            ArrayConsolidate(array, q));
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));
  if (spec.grouped_dims.empty()) {
    return Status::InvalidArgument(
        "cannot materialize a fully-collapsed consolidation as an array");
  }
  std::vector<uint32_t> dims;
  std::vector<uint32_t> extents;
  for (int32_t c : spec.cardinalities) {
    dims.push_back(static_cast<uint32_t>(c));
    extents.push_back(std::max<uint32_t>(
        1, std::min<uint32_t>(static_cast<uint32_t>(c),
                              options.default_chunk_extent)));
  }
  PARADISE_ASSIGN_OR_RETURN(ChunkLayout layout,
                            ChunkLayout::Make(dims, extents));
  ChunkedArray::Builder builder(storage, layout, options);
  for (const query::ResultRow& row : result.rows()) {
    CellCoords coords(row.group.size());
    for (size_t i = 0; i < row.group.size(); ++i) {
      coords[i] = static_cast<uint32_t>(row.group[i]);
    }
    PARADISE_RETURN_IF_ERROR(builder.Put(coords, row.agg.sum));
  }
  return builder.Finish();
}

Result<OlapArray> ConsolidateToOlapArray(
    StorageManager* storage, const OlapArray& array,
    const std::vector<const DimensionTable*>& dims,
    const query::ConsolidationQuery& q, const std::string& name,
    const ArrayOptions& options) {
  if (dims.size() != array.num_dims()) {
    return Status::InvalidArgument("dimension table count mismatch");
  }
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));
  if (spec.grouped_dims.empty()) {
    return Status::InvalidArgument(
        "cannot materialize a fully-collapsed consolidation as an ADT");
  }
  PARADISE_ASSIGN_OR_RETURN(query::GroupedResult result,
                            ArrayConsolidate(array, q));

  // Phase 1 of §4.1: build the result dimension tables (and with them, via
  // OlapArray::Builder, the result B-trees). Result dimension g's member c
  // is the grouped level's value c; its attributes are the grouped level and
  // every coarser one, valued from the first base member mapping to c.
  std::vector<DimensionTable> result_dims;
  result_dims.reserve(spec.grouped_dims.size());
  for (size_t g = 0; g < spec.grouped_dims.size(); ++g) {
    const size_t d = spec.grouped_dims[g];
    const size_t level = spec.group_cols[g];
    const DimensionTable& source = *dims[d];
    const IndexToIndexArray& i2i = array.i2i(d);
    const size_t num_levels = i2i.num_levels();

    std::vector<Column> columns;
    columns.push_back(Column{source.schema().column(0).name,
                             ColumnType::kInt32});
    for (size_t l = level; l < num_levels; ++l) {
      columns.push_back(source.schema().column(l));
    }
    PARADISE_ASSIGN_OR_RETURN(
        DimensionTable table,
        DimensionTable::Create(storage->pool(),
                               source.name() + "@" +
                                   source.schema().column(level).name,
                               Schema(columns)));

    // First base member per grouped-level code.
    std::vector<int32_t> representative(
        static_cast<size_t>(spec.cardinalities[g]), -1);
    for (uint32_t base = 0; base < i2i.num_members(); ++base) {
      const int32_t code = i2i.Map(level, base);
      if (representative[code] < 0) {
        representative[code] = static_cast<int32_t>(base);
      }
    }
    const Schema table_schema = table.schema();
    for (int32_t code = 0; code < spec.cardinalities[g]; ++code) {
      if (representative[code] < 0) {
        return Status::Internal("level code with no base member");
      }
      const auto base = static_cast<uint32_t>(representative[code]);
      Tuple row(&table_schema);
      row.SetInt32(0, code);
      for (size_t l = level; l < num_levels; ++l) {
        const int32_t lcode = i2i.Map(l, base);
        PARADISE_ASSIGN_OR_RETURN(const AttributeDictionary* dict,
                                  source.Dictionary(l));
        PARADISE_RETURN_IF_ERROR(row.SetString(
            1 + (l - level), dict->code_to_display[lcode]));
      }
      PARADISE_RETURN_IF_ERROR(table.Append(row));
    }
    PARADISE_RETURN_IF_ERROR(storage->SetRoot(
        "dim." + name + "." + source.name(), table.first_page()));
    result_dims.push_back(std::move(table));
  }

  // Phase 2: load the aggregated cells into the result ADT.
  std::vector<const DimensionTable*> dim_ptrs;
  dim_ptrs.reserve(result_dims.size());
  for (const DimensionTable& t : result_dims) dim_ptrs.push_back(&t);
  std::vector<uint32_t> extents;
  for (int32_t c : spec.cardinalities) {
    extents.push_back(std::max<uint32_t>(
        1, std::min<uint32_t>(static_cast<uint32_t>(c),
                              options.default_chunk_extent)));
  }
  OlapArray::Builder builder(storage, name, dim_ptrs, extents, options);
  PARADISE_RETURN_IF_ERROR(builder.Init());
  for (const query::ResultRow& row : result.rows()) {
    PARADISE_RETURN_IF_ERROR(builder.PutByKeys(row.group, row.agg.sum));
  }
  PARADISE_ASSIGN_OR_RETURN(OlapArray out, builder.Finish());

  // Record provenance so the aggregate can transparently answer later
  // derivable queries (core/aggregate_registry.h).
  AggregateProvenance provenance;
  provenance.name = name;
  provenance.base_cube = array.name();
  provenance.measure = q.measure;
  for (size_t g = 0; g < spec.grouped_dims.size(); ++g) {
    provenance.grouped.push_back(
        AggregateProvenance::Entry{spec.grouped_dims[g], spec.group_cols[g]});
  }
  PARADISE_RETURN_IF_ERROR(RegisterAggregate(storage, provenance));
  return out;
}

}  // namespace paradise
