#include "core/consolidate.h"

#include "core/aggregate.h"
#include "core/aggregate_registry.h"
#include "core/kernels/consolidate_kernel.h"

namespace paradise {

Result<query::GroupedResult> ArrayConsolidate(const OlapArray& array,
                                              const query::ConsolidationQuery& q,
                                              PhaseTimer* timer,
                                              ArrayConsolidateStats* stats,
                                              const CancellationToken* cancel) {
  if (q.HasSelection()) {
    return Status::InvalidArgument(
        "ArrayConsolidate handles no-selection queries; use "
        "ArrayConsolidateWithSelection");
  }
  GroupSpec spec;
  {
    ScopedPhase phase(timer, "prepare");
    PARADISE_ASSIGN_OR_RETURN(spec, GroupSpec::Make(array, q));
  }

  std::vector<query::AggState> flat(spec.num_groups);
  {
    ScopedPhase phase(timer, "scan+aggregate");
    // One reusable table set for the whole scan: Build() refills it per
    // chunk without reallocating (the old per-chunk BuildChunkTables did
    // 2-3 heap allocations per chunk).
    kernels::KernelTables tables;
    PARADISE_RETURN_IF_ERROR(array.array(q.measure).ScanChunkViews(
        [&](uint64_t chunk_no, const ChunkView& view) -> Status {
          if (cancel != nullptr) {
            PARADISE_RETURN_IF_ERROR(cancel->Check());
          }
          tables.Build(array, spec, chunk_no);
          const uint64_t cells =
              kernels::AggregateView(view, tables, flat.data());
          if (stats != nullptr) {
            ++stats->chunks_read;
            stats->cells_scanned += cells;
          }
          return Status::OK();
        }));
  }

  {
    ScopedPhase phase(timer, "emit");
    return FlatToGroupedResult(spec, flat, spec.GroupColumnNames(array));
  }
}

Result<ChunkedArray> MaterializeConsolidation(
    StorageManager* storage, const OlapArray& array,
    const query::ConsolidationQuery& q, const ArrayOptions& options) {
  PARADISE_ASSIGN_OR_RETURN(query::GroupedResult result,
                            ArrayConsolidate(array, q));
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));
  if (spec.grouped_dims.empty()) {
    return Status::InvalidArgument(
        "cannot materialize a fully-collapsed consolidation as an array");
  }
  std::vector<uint32_t> dims;
  std::vector<uint32_t> extents;
  for (int32_t c : spec.cardinalities) {
    dims.push_back(static_cast<uint32_t>(c));
    extents.push_back(std::max<uint32_t>(
        1, std::min<uint32_t>(static_cast<uint32_t>(c),
                              options.default_chunk_extent)));
  }
  PARADISE_ASSIGN_OR_RETURN(ChunkLayout layout,
                            ChunkLayout::Make(dims, extents));
  ChunkedArray::Builder builder(storage, layout, options);
  for (const query::ResultRow& row : result.rows()) {
    CellCoords coords(row.group.size());
    for (size_t i = 0; i < row.group.size(); ++i) {
      coords[i] = static_cast<uint32_t>(row.group[i]);
    }
    PARADISE_RETURN_IF_ERROR(builder.Put(coords, row.agg.sum));
  }
  return builder.Finish();
}

Result<OlapArray> ConsolidateToOlapArray(
    StorageManager* storage, const OlapArray& array,
    const std::vector<const DimensionTable*>& dims,
    const query::ConsolidationQuery& q, const std::string& name,
    const ArrayOptions& options) {
  if (dims.size() != array.num_dims()) {
    return Status::InvalidArgument("dimension table count mismatch");
  }
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));
  if (spec.grouped_dims.empty()) {
    return Status::InvalidArgument(
        "cannot materialize a fully-collapsed consolidation as an ADT");
  }
  PARADISE_ASSIGN_OR_RETURN(query::GroupedResult result,
                            ArrayConsolidate(array, q));

  // Phase 1 of §4.1: build the result dimension tables (and with them, via
  // OlapArray::Builder, the result B-trees). Result dimension g's member c
  // is the grouped level's value c; its attributes are the grouped level and
  // every coarser one, valued from the first base member mapping to c.
  std::vector<DimensionTable> result_dims;
  result_dims.reserve(spec.grouped_dims.size());
  for (size_t g = 0; g < spec.grouped_dims.size(); ++g) {
    const size_t d = spec.grouped_dims[g];
    const size_t level = spec.group_cols[g];
    const DimensionTable& source = *dims[d];
    const IndexToIndexArray& i2i = array.i2i(d);
    const size_t num_levels = i2i.num_levels();

    std::vector<Column> columns;
    columns.push_back(Column{source.schema().column(0).name,
                             ColumnType::kInt32});
    for (size_t l = level; l < num_levels; ++l) {
      columns.push_back(source.schema().column(l));
    }
    PARADISE_ASSIGN_OR_RETURN(
        DimensionTable table,
        DimensionTable::Create(storage->pool(),
                               source.name() + "@" +
                                   source.schema().column(level).name,
                               Schema(columns)));

    // First base member per grouped-level code.
    std::vector<int32_t> representative(
        static_cast<size_t>(spec.cardinalities[g]), -1);
    for (uint32_t base = 0; base < i2i.num_members(); ++base) {
      const int32_t code = i2i.Map(level, base);
      if (representative[code] < 0) {
        representative[code] = static_cast<int32_t>(base);
      }
    }
    const Schema table_schema = table.schema();
    for (int32_t code = 0; code < spec.cardinalities[g]; ++code) {
      if (representative[code] < 0) {
        return Status::Internal("level code with no base member");
      }
      const auto base = static_cast<uint32_t>(representative[code]);
      Tuple row(&table_schema);
      row.SetInt32(0, code);
      for (size_t l = level; l < num_levels; ++l) {
        const int32_t lcode = i2i.Map(l, base);
        PARADISE_ASSIGN_OR_RETURN(const AttributeDictionary* dict,
                                  source.Dictionary(l));
        PARADISE_RETURN_IF_ERROR(row.SetString(
            1 + (l - level), dict->code_to_display[lcode]));
      }
      PARADISE_RETURN_IF_ERROR(table.Append(row));
    }
    PARADISE_RETURN_IF_ERROR(storage->SetRoot(
        "dim." + name + "." + source.name(), table.first_page()));
    result_dims.push_back(std::move(table));
  }

  // Phase 2: load the aggregated cells into the result ADT.
  std::vector<const DimensionTable*> dim_ptrs;
  dim_ptrs.reserve(result_dims.size());
  for (const DimensionTable& t : result_dims) dim_ptrs.push_back(&t);
  std::vector<uint32_t> extents;
  for (int32_t c : spec.cardinalities) {
    extents.push_back(std::max<uint32_t>(
        1, std::min<uint32_t>(static_cast<uint32_t>(c),
                              options.default_chunk_extent)));
  }
  OlapArray::Builder builder(storage, name, dim_ptrs, extents, options);
  PARADISE_RETURN_IF_ERROR(builder.Init());
  for (const query::ResultRow& row : result.rows()) {
    PARADISE_RETURN_IF_ERROR(builder.PutByKeys(row.group, row.agg.sum));
  }
  PARADISE_ASSIGN_OR_RETURN(OlapArray out, builder.Finish());

  // Record provenance so the aggregate can transparently answer later
  // derivable queries (core/aggregate_registry.h).
  AggregateProvenance provenance;
  provenance.name = name;
  provenance.base_cube = array.name();
  provenance.measure = q.measure;
  for (size_t g = 0; g < spec.grouped_dims.size(); ++g) {
    provenance.grouped.push_back(
        AggregateProvenance::Entry{spec.grouped_dims[g], spec.group_cols[g]});
  }
  PARADISE_RETURN_IF_ERROR(RegisterAggregate(storage, provenance));
  return out;
}

}  // namespace paradise
