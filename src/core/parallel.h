// Parallel array consolidation — the intra-operator parallelism the paper
// names as future work (§6: "we would like to investigate parallelization
// of OLAP data structures and key OLAP operations"). Worker threads claim
// chunks from a shared read-ahead cursor and each runs the full per-chunk
// pipeline — fetch through the (sharded, thread-safe) buffer pool, decode,
// aggregate position-based into a private flat result array — so there is
// no coordinator bottleneck: the only serialized step is the final merge of
// the private arrays. When the storage manager has a background I/O pool,
// the cursor keeps the next chunks' reads in flight ahead of the workers
// (array/chunk_prefetcher.h).
//
// Both engines produce bit-identical GroupedResults to their serial
// counterparts at every thread count: AggState accumulation over int64
// measures (sum/count/min/max) is order-independent, and cell→group
// assignment does not depend on which worker processes which morsel.
//
// Work is scheduled morsel-wise (core/morsel.h): a worker that fetches a
// large chunk splits it into cell ranges other workers steal, so a few
// skewed chunks no longer serialize the tail of the query. MorselOptions
// controls the split threshold; min_cells = UINT32_MAX restores the old
// whole-chunk cursor.
#pragma once

#include <cstddef>

#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/consolidate_select.h"
#include "core/morsel.h"
#include "core/olap_array.h"
#include "query/query.h"
#include "query/result.h"

namespace paradise {

struct ParallelConsolidateStats {
  uint64_t chunks_read = 0;
  size_t threads_used = 0;
  /// Morsel scheduling counters (core/morsel.h): total morsels executed,
  /// extra pieces split off large chunks, and morsels executed by a worker
  /// other than the one that fetched the chunk.
  uint64_t morsels = 0;
  uint64_t morsel_splits = 0;
  uint64_t morsel_steals = 0;
};

/// Runs a no-selection consolidation with `num_threads` worker threads
/// (>= 1; 1 degenerates to the serial algorithm's behaviour). Produces
/// exactly the same GroupedResult as ArrayConsolidate. `cancel`, when
/// given, is polled by every worker at each morsel boundary (at least as
/// often as the old per-chunk poll); the first
/// worker to observe it returns the typed Status, the others drain, and
/// every thread is joined before the call returns — no leaked workers.
Result<query::GroupedResult> ParallelArrayConsolidate(
    const OlapArray& array, const query::ConsolidationQuery& q,
    size_t num_threads, PhaseTimer* timer = nullptr,
    ParallelConsolidateStats* stats = nullptr,
    const CancellationToken* cancel = nullptr,
    const MorselOptions& morsel_options = {});

/// Runs a consolidation with at least one selection (paper §4.2) with
/// `num_threads` worker threads. Phase 1 (B-tree index lookups) and the
/// chunk-overlap scan stay serial — they are cheap and touch no chunk data;
/// the per-chunk probe loop fans out. Produces exactly the same
/// GroupedResult as ArrayConsolidateWithSelection.
Result<query::GroupedResult> ParallelArrayConsolidateWithSelection(
    const OlapArray& array, const query::ConsolidationQuery& q,
    size_t num_threads, PhaseTimer* timer = nullptr,
    ArraySelectStats* select_stats = nullptr,
    ParallelConsolidateStats* stats = nullptr,
    const ArraySelectOptions& options = {},
    const MorselOptions& morsel_options = {});

}  // namespace paradise
