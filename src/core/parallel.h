// Parallel array consolidation — the intra-operator parallelism the paper
// names as future work (§6: "we would like to investigate parallelization
// of OLAP data structures and key OLAP operations"). One coordinator thread
// reads chunk blobs through the (single-threaded) buffer pool in chunk
// order; worker threads decode and aggregate position-based into private
// flat result arrays, merged at the end. This parallelizes the CPU side of
// §4.1 — decode + IndexToIndex lookups + aggregation — while keeping the
// storage manager single-threaded, as in the paper.
#pragma once

#include <cstddef>

#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/olap_array.h"
#include "query/query.h"
#include "query/result.h"

namespace paradise {

struct ParallelConsolidateStats {
  uint64_t chunks_read = 0;
  size_t threads_used = 0;
};

/// Runs a no-selection consolidation with `num_threads` worker threads
/// (>= 1; 1 degenerates to the serial algorithm's behaviour). Produces
/// exactly the same GroupedResult as ArrayConsolidate.
Result<query::GroupedResult> ParallelArrayConsolidate(
    const OlapArray& array, const query::ConsolidationQuery& q,
    size_t num_threads, PhaseTimer* timer = nullptr,
    ParallelConsolidateStats* stats = nullptr);

}  // namespace paradise
