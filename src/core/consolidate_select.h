// The OLAP Array consolidation-with-selection algorithm (paper §4.2): probe
// the per-attribute B-trees for the selected values to get per-dimension
// index lists, merge them, then enumerate the cross-product lazily in chunk
// order — skipping chunks that cannot contain a selected cell — and probe
// each candidate by binary search over the chunk's sorted offsets.
#pragma once

#include <cstdint>

#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/olap_array.h"
#include "query/query.h"
#include "query/result.h"

namespace paradise {

struct ArraySelectStats {
  uint64_t chunks_read = 0;
  uint64_t chunks_skipped = 0;   // skipped without I/O (no overlap)
  uint64_t candidates = 0;       // cross-product elements generated
  uint64_t hits = 0;             // candidates that were valid cells
};

struct ArraySelectOptions {
  /// §4.2 optimization 1: do not read chunks that overlap no cross-product
  /// element. Off = read every non-empty chunk (ablation).
  bool skip_non_overlapping_chunks = true;
};

/// Runs a consolidation with at least one selection.
Result<query::GroupedResult> ArrayConsolidateWithSelection(
    const OlapArray& array, const query::ConsolidationQuery& q,
    PhaseTimer* timer = nullptr, ArraySelectStats* stats = nullptr,
    const ArraySelectOptions& options = {});

}  // namespace paradise
