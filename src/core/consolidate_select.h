// The OLAP Array consolidation-with-selection algorithm (paper §4.2): probe
// the per-attribute B-trees for the selected values to get per-dimension
// index lists, merge them, then enumerate the cross-product lazily in chunk
// order — skipping chunks that cannot contain a selected cell — and probe
// each candidate by binary search over the chunk's sorted offsets.
//
// The building blocks (index-list resolution, per-chunk overlap slices, the
// odometer probe over one chunk) are exposed so the parallel engine
// (core/parallel.h) can run the same algorithm with the chunk loop fanned
// out across worker threads: phase 1 and the overlap scan are cheap and
// stay serial, the per-chunk probe works on disjoint chunks and private
// result arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/aggregate.h"
#include "core/olap_array.h"
#include "query/query.h"
#include "query/result.h"

namespace paradise {

struct ArraySelectStats {
  uint64_t chunks_read = 0;
  uint64_t chunks_skipped = 0;   // skipped without I/O (no overlap)
  uint64_t candidates = 0;       // cross-product elements generated
  uint64_t hits = 0;             // candidates that were valid cells
};

struct ArraySelectOptions {
  /// §4.2 optimization 1: do not read chunks that overlap no cross-product
  /// element. Off = read every non-empty chunk (ablation).
  bool skip_non_overlapping_chunks = true;
  /// Polled at every chunk boundary of the probe loop (serial and parallel);
  /// when it fires, the query stops within one chunk's work and returns the
  /// token's typed Status. Not owned; may be nullptr.
  const CancellationToken* cancel = nullptr;
};

/// Runs a consolidation with at least one selection.
Result<query::GroupedResult> ArrayConsolidateWithSelection(
    const OlapArray& array, const query::ConsolidationQuery& q,
    PhaseTimer* timer = nullptr, ArraySelectStats* stats = nullptr,
    const ArraySelectOptions& options = {});

namespace select_detail {

/// Phase-1 state shared by the serial and parallel paths: per-dimension
/// final index lists (sorted, deduplicated) and per-group level maps.
/// `empty` is true when some dimension's list came out empty — the
/// cross-product is empty and the result has no groups.
struct SelectionPlan {
  std::vector<std::vector<uint32_t>> lists;
  std::vector<const std::vector<int32_t>*> level_maps;
  bool empty = false;
};

/// Resolves the B-tree lookups and level maps (paper §4.2 phase 1).
Result<SelectionPlan> MakeSelectionPlan(const OlapArray& array,
                                        const query::ConsolidationQuery& q,
                                        const GroupSpec& spec);

/// One chunk the probe loop must read, with the half-open per-dimension
/// slice [slice_begin[d], slice_end[d]) into plan.lists[d] covering the
/// chunk's coordinate box. `overlap` is false only on the ablation path
/// that reads non-overlapping chunks anyway (nothing to probe).
struct SelectionChunkWork {
  uint64_t chunk_no = 0;
  std::vector<uint32_t> slice_begin;
  std::vector<uint32_t> slice_end;
  bool overlap = true;
};

/// Scans the chunk directory (no chunk I/O) and returns the chunks the
/// probe loop must read, in chunk-number order. Skipped chunks are counted
/// into `stats` when given.
std::vector<SelectionChunkWork> PlanSelectionChunks(
    const OlapArray& array, const query::ConsolidationQuery& q,
    const SelectionPlan& plan, const ArraySelectOptions& options,
    ArraySelectStats* stats);

/// Probes one chunk blob: enumerates the cross-product elements inside the
/// chunk's slices in increasing offset order and aggregates hits into
/// `flat` (paper §4.2 optimizations 2+3). `flat` and `stats` may be
/// thread-private; calls for distinct chunks are otherwise independent.
/// Counts the chunk read into `stats`; the probe itself is
/// ProbeSelectionRange below.
Status ProbeSelectionChunk(const OlapArray& array, const GroupSpec& spec,
                           const SelectionPlan& plan,
                           const SelectionChunkWork& work,
                           const std::string& blob,
                           std::vector<query::AggState>* flat,
                           ArraySelectStats* stats);

/// The odometer probe over an already-decoded chunk view, without the
/// chunks_read accounting — the morsel form. `work.overlap` must be true.
/// Morsels narrow one dimension's slice (core/morsel.h) and call this per
/// piece: the probed candidate boxes are disjoint and their union is the
/// whole-chunk call's box, so any morsel schedule aggregates exactly the
/// same hits. (`candidates` counts can differ from the serial run's: the
/// sparse early-out stops each piece's odometer independently.)
Status ProbeSelectionRange(const OlapArray& array, const GroupSpec& spec,
                           const SelectionPlan& plan,
                           const SelectionChunkWork& work,
                           const ChunkView& view,
                           std::vector<query::AggState>* flat,
                           ArraySelectStats* stats);

}  // namespace select_detail

}  // namespace paradise
