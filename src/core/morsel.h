// Morsel-driven scheduling for the parallel consolidation engines. The old
// scheme handed whole chunks to workers from the read-ahead cursor, so one
// skewed chunk (a few dense chunks holding most of the cells) serialized the
// tail of the query on a single worker. A MorselPool still claims chunks
// from the shared ChunkReadAhead cursor — preserving the announced I/O order
// — but the worker that fetches a large chunk splits it into cell-range
// morsels (~min_cells positions each), keeps the first and publishes the
// rest on a shared queue that any idle worker drains first. Small chunks
// (below 2*min_cells positions) stay whole: zero extra synchronization on
// the balanced path.
//
// A morsel never spans chunks, so per-chunk decode tables are built at most
// once per (worker, chunk) and cancellation polled at morsel boundaries is
// at least as prompt as the old per-chunk poll.
//
// Stealing is counted when a worker pops a morsel another worker produced;
// splits count the extra pieces published. Both surface through
// ParallelConsolidateStats and the morsel.steals / morsel.splits registry
// counters (core/parallel.cc).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <optional>
#include <string>
#include <vector>

#include "array/chunk.h"
#include "array/chunk_prefetcher.h"
#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "core/consolidate_select.h"

namespace paradise {

struct MorselOptions {
  /// Target positions (sparse entries / dense offsets, or selection
  /// cross-product candidates) per morsel. A chunk with >= 2*min_cells
  /// positions is split into ~min_cells-sized pieces; smaller chunks stay
  /// whole. Clamped to >= 1; UINT32_MAX degenerates to the old whole-chunk
  /// cursor (the abl_parallel baseline).
  uint32_t min_cells = 1u << 14;

  /// Optional cancellation for the pool itself. Workers already poll their
  /// token between morsels, but a worker parked INSIDE Next() — waiting on
  /// the condition variable for a late fetcher — would otherwise sleep
  /// through a cancel and hang the join if the expected notify never comes.
  /// With a token set, waits are bounded and re-check the token, so every
  /// worker leaves Next() with the token's typed status promptly.
  const CancellationToken* cancel = nullptr;
};

/// Scheduling counters, summed over the query.
struct MorselPoolStats {
  uint64_t morsels = 0;  // total morsels handed out
  uint64_t splits = 0;   // extra pieces published beyond the first
  uint64_t steals = 0;   // morsels popped by a worker that did not fetch them
};

/// One unit of work for the no-selection engine: a position range of one
/// chunk ([begin, end) entry indexes when sparse, chunk offsets when dense —
/// see kernels::AggregateRange).
struct Morsel {
  uint64_t chunk_no = 0;
  std::shared_ptr<const std::string> blob;  // owns the bytes `view` reads
  std::optional<ChunkView> view;
  uint32_t begin = 0;
  uint32_t end = 0;
  bool first = false;  // first morsel of its chunk (counts the chunk read)
  size_t producer = 0;
};

class MorselPool {
 public:
  /// `cursor` must outlive the pool and be drained only through it.
  MorselPool(ChunkReadAhead* cursor, const MorselOptions& options);

  /// Claims the next morsel for worker `worker`: shared queue first, then a
  /// fresh chunk from the cursor (splitting it if large). Returns false when
  /// all chunks are claimed and the queue is drained; blocks briefly only
  /// when another worker is mid-fetch and may still publish pieces.
  Result<bool> Next(size_t worker, Morsel* out);

  MorselPoolStats stats() const;

 private:
  ChunkReadAhead* cursor_;
  const uint32_t min_cells_;
  const CancellationToken* cancel_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Morsel> queue_;
  bool exhausted_ = false;  // cursor returned "no more chunks" (or an error)
  size_t fetching_ = 0;     // workers currently inside cursor_->Next()
  MorselPoolStats stats_;
};

/// Selection-engine unit of work: a sub-box of one chunk's odometer, made by
/// narrowing one dimension's index-list slice. ProbeSelectionRange
/// (core/consolidate_select.h) runs unchanged on the narrowed work item.
struct SelectionMorsel {
  const select_detail::SelectionChunkWork* work = nullptr;  // planned item
  std::shared_ptr<const std::string> blob;
  std::optional<ChunkView> view;
  /// When set, overrides work->slice_begin/end for dimension `split_dim`.
  size_t split_dim = 0;
  uint32_t split_begin = 0;
  uint32_t split_end = 0;
  bool split = false;
  bool first = false;
  size_t producer = 0;
};

class SelectionMorselPool {
 public:
  /// `work_items` is sorted by chunk_no and must outlive the pool; `cursor`
  /// iterates exactly the chunk numbers of `work_items`.
  SelectionMorselPool(ChunkReadAhead* cursor,
                      const std::vector<select_detail::SelectionChunkWork>*
                          work_items,
                      const MorselOptions& options);

  Result<bool> Next(size_t worker, SelectionMorsel* out);

  MorselPoolStats stats() const;

 private:
  ChunkReadAhead* cursor_;
  const std::vector<select_detail::SelectionChunkWork>* work_items_;
  const uint32_t min_cells_;
  const CancellationToken* cancel_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<SelectionMorsel> queue_;
  bool exhausted_ = false;
  size_t fetching_ = 0;
  MorselPoolStats stats_;
};

}  // namespace paradise
