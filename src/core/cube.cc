#include "core/cube.h"

#include <algorithm>
#include <bit>

#include "core/aggregate.h"
#include "core/consolidate.h"

namespace paradise {

namespace {

/// Shape of one cuboid's flat array: which dims it groups, their level
/// cardinalities and row-major strides.
struct CuboidShape {
  std::vector<size_t> dims;        // grouped dimensions, ascending
  std::vector<int32_t> cards;      // per grouped dimension
  std::vector<uint64_t> strides;   // row-major
  uint64_t num_groups = 1;
};

CuboidShape ShapeFor(uint32_t mask, size_t n,
                     const std::vector<int32_t>& level_cards) {
  CuboidShape shape;
  for (size_t d = 0; d < n; ++d) {
    if ((mask >> d) & 1) {
      shape.dims.push_back(d);
      shape.cards.push_back(level_cards[d]);
    }
  }
  shape.strides.resize(shape.dims.size());
  uint64_t stride = 1;
  for (size_t g = shape.dims.size(); g > 0; --g) {
    shape.strides[g - 1] = stride;
    stride *= static_cast<uint64_t>(shape.cards[g - 1]);
  }
  shape.num_groups = stride;
  return shape;
}

}  // namespace

Result<std::vector<Cuboid>> ArrayCube(const OlapArray& array,
                                      const CubeQuery& cube,
                                      PhaseTimer* timer, CubeStats* stats) {
  const size_t n = array.num_dims();
  if (cube.level_cols.size() != n) {
    return Status::InvalidArgument("level_cols arity mismatch");
  }
  if (n > 20) {
    return Status::InvalidArgument("cube over more than 20 dimensions");
  }
  std::vector<int32_t> level_cards(n);
  for (size_t d = 0; d < n; ++d) {
    const size_t col = cube.level_cols[d];
    if (col == 0 || col >= array.dim_schema(d).num_columns()) {
      return Status::InvalidArgument("bad level column on dimension " +
                                     std::to_string(d));
    }
    level_cards[d] = array.i2i(d).Cardinality(col);
  }

  const uint32_t full_mask = static_cast<uint32_t>((1u << n) - 1);
  std::vector<CuboidShape> shapes(full_mask + 1);
  std::vector<std::vector<query::AggState>> flats(full_mask + 1);
  for (uint32_t mask = 0; mask <= full_mask; ++mask) {
    shapes[mask] = ShapeFor(mask, n, level_cards);
  }

  uint64_t aggregate_ops = 0;

  // Phase 1: the finest cuboid straight from the chunked array (the §4.1
  // consolidation, position-based).
  {
    ScopedPhase phase(timer, "base-cuboid");
    query::ConsolidationQuery q;
    q.dims.resize(n);
    for (size_t d = 0; d < n; ++d) q.dims[d].group_by_col = cube.level_cols[d];
    PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));
    flats[full_mask].assign(spec.num_groups, query::AggState{});
    ArrayConsolidateStats base_stats;
    // Reuse the serial consolidation's chunk pass by running it and copying
    // its grouped result into the flat array.
    PARADISE_ASSIGN_OR_RETURN(query::GroupedResult base,
                              ArrayConsolidate(array, q, nullptr,
                                               &base_stats));
    if (stats != nullptr) stats->chunks_read = base_stats.chunks_read;
    aggregate_ops += base_stats.cells_scanned;
    for (const query::ResultRow& row : base.rows()) {
      uint64_t flat = 0;
      for (size_t g = 0; g < row.group.size(); ++g) {
        flat += static_cast<uint64_t>(row.group[g]) *
                shapes[full_mask].strides[g];
      }
      flats[full_mask][flat] = row.agg;
    }
  }

  // Phase 2: every coarser cuboid from its smallest parent (one extra
  // grouped dimension), in decreasing popcount order.
  {
    ScopedPhase phase(timer, "lattice");
    for (int pc = static_cast<int>(n) - 1; pc >= 0; --pc) {
      for (uint32_t mask = 0; mask <= full_mask; ++mask) {
        if (std::popcount(mask) != pc) continue;
        // Smallest parent: add back the absent dimension with the fewest
        // level members.
        uint32_t parent = 0;
        uint64_t best = UINT64_MAX;
        for (size_t d = 0; d < n; ++d) {
          if ((mask >> d) & 1) continue;
          const uint32_t candidate = mask | (1u << d);
          if (shapes[candidate].num_groups < best) {
            best = shapes[candidate].num_groups;
            parent = candidate;
          }
        }
        const CuboidShape& ps = shapes[parent];
        const CuboidShape& cs = shapes[mask];
        // Child strides aligned to the parent's grouped-dim list: the child
        // keeps a subset of the parent's dims.
        std::vector<uint64_t> child_stride_in_parent(ps.dims.size(), 0);
        for (size_t pg = 0, cg = 0; pg < ps.dims.size(); ++pg) {
          if (cg < cs.dims.size() && cs.dims[cg] == ps.dims[pg]) {
            child_stride_in_parent[pg] = cs.strides[cg];
            ++cg;
          }
        }
        std::vector<query::AggState>& child = flats[mask];
        child.assign(cs.num_groups, query::AggState{});
        const std::vector<query::AggState>& parent_flat = flats[parent];
        for (uint64_t p = 0; p < parent_flat.size(); ++p) {
          if (parent_flat[p].count == 0) continue;
          uint64_t c = 0;
          uint64_t rest = p;
          for (size_t pg = 0; pg < ps.dims.size(); ++pg) {
            const uint64_t coord = rest / ps.strides[pg];
            rest %= ps.strides[pg];
            c += coord * child_stride_in_parent[pg];
          }
          child[c].Merge(parent_flat[p]);
          ++aggregate_ops;
        }
      }
    }
  }

  // Phase 3: emit, finest first.
  ScopedPhase phase(timer, "emit");
  std::vector<Cuboid> out;
  out.reserve(full_mask + 1);
  std::vector<uint32_t> masks;
  for (uint32_t mask = 0; mask <= full_mask; ++mask) masks.push_back(mask);
  std::sort(masks.begin(), masks.end(), [](uint32_t a, uint32_t b) {
    const int pa = std::popcount(a), pb = std::popcount(b);
    return pa != pb ? pa > pb : a < b;
  });
  for (uint32_t mask : masks) {
    const CuboidShape& cs = shapes[mask];
    std::vector<std::string> columns;
    for (size_t g = 0; g < cs.dims.size(); ++g) {
      const size_t d = cs.dims[g];
      columns.push_back(
          array.dim_name(d) + "." +
          array.dim_schema(d).column(cube.level_cols[d]).name);
    }
    query::GroupedResult result(std::move(columns));
    for (uint64_t i = 0; i < flats[mask].size(); ++i) {
      if (flats[mask][i].count == 0) continue;
      std::vector<int32_t> group(cs.dims.size());
      uint64_t rest = i;
      for (size_t g = 0; g < cs.dims.size(); ++g) {
        group[g] = static_cast<int32_t>(rest / cs.strides[g]);
        rest %= cs.strides[g];
      }
      result.Add(query::ResultRow{std::move(group), flats[mask][i]});
    }
    result.SortCanonical();
    out.push_back(Cuboid{mask, std::move(result)});
  }
  if (stats != nullptr) stats->aggregate_ops = aggregate_ops;
  return out;
}

}  // namespace paradise
