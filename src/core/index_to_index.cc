#include "core/index_to_index.h"

#include "common/coding.h"
#include "relational/dimension_table.h"

namespace paradise {

Result<IndexToIndexArray> IndexToIndexArray::FromDimension(
    const DimensionTable& dim) {
  IndexToIndexArray out;
  out.num_members_ = dim.num_rows();
  const size_t levels = dim.schema().num_columns();
  out.cardinalities_.resize(levels);
  out.maps_.resize(levels);
  out.cardinalities_[0] = static_cast<int32_t>(dim.num_rows());
  for (size_t level = 1; level < levels; ++level) {
    PARADISE_ASSIGN_OR_RETURN(out.maps_[level], dim.LevelMap(level));
    PARADISE_ASSIGN_OR_RETURN(const AttributeDictionary* dict,
                              dim.Dictionary(level));
    out.cardinalities_[level] = dict->cardinality();
  }
  return out;
}

std::optional<std::vector<int32_t>> IndexToIndexArray::FunctionalRollUp(
    size_t from_level, size_t to_level) const {
  if (from_level >= num_levels() || to_level >= num_levels()) {
    return std::nullopt;
  }
  std::vector<int32_t> out(static_cast<size_t>(cardinalities_[from_level]),
                           -1);
  for (uint32_t b = 0; b < num_members_; ++b) {
    const int32_t f = Map(from_level, b);
    const int32_t c = Map(to_level, b);
    if (f < 0 || static_cast<size_t>(f) >= out.size()) return std::nullopt;
    if (out[f] == -1) {
      out[f] = c;
    } else if (out[f] != c) {
      return std::nullopt;  // one fine code spans two coarse codes
    }
  }
  return out;
}

std::string IndexToIndexArray::Serialize() const {
  std::string out;
  char scratch[4];
  EncodeFixed32(scratch, num_members_);
  out.append(scratch, 4);
  EncodeFixed32(scratch, static_cast<uint32_t>(cardinalities_.size()));
  out.append(scratch, 4);
  for (int32_t c : cardinalities_) {
    EncodeFixed32(scratch, static_cast<uint32_t>(c));
    out.append(scratch, 4);
  }
  for (size_t level = 1; level < maps_.size(); ++level) {
    for (int32_t v : maps_[level]) {
      EncodeFixed32(scratch, static_cast<uint32_t>(v));
      out.append(scratch, 4);
    }
  }
  return out;
}

Result<IndexToIndexArray> IndexToIndexArray::Deserialize(std::string_view data,
                                                         size_t* consumed) {
  if (data.size() < 8) return Status::Corruption("i2i blob too small");
  IndexToIndexArray out;
  out.num_members_ = DecodeFixed32(data.data());
  const uint32_t levels = DecodeFixed32(data.data() + 4);
  if (levels == 0) return Status::Corruption("i2i must have >= 1 level");
  // Cheap plausibility bounds before the (overflow-prone) size product.
  if (levels > data.size() || out.num_members_ > data.size()) {
    return Status::Corruption("i2i header implausible for blob size");
  }
  const size_t need = 8 + static_cast<size_t>(levels) * 4 +
                      static_cast<size_t>(levels - 1) * out.num_members_ * 4;
  if (data.size() < need) return Status::Corruption("i2i blob truncated");
  out.cardinalities_.resize(levels);
  out.maps_.resize(levels);
  const char* p = data.data() + 8;
  for (uint32_t l = 0; l < levels; ++l) {
    out.cardinalities_[l] = static_cast<int32_t>(DecodeFixed32(p));
    p += 4;
  }
  for (uint32_t l = 1; l < levels; ++l) {
    out.maps_[l].resize(out.num_members_);
    for (uint32_t m = 0; m < out.num_members_; ++m) {
      out.maps_[l][m] = static_cast<int32_t>(DecodeFixed32(p));
      p += 4;
    }
  }
  if (consumed != nullptr) *consumed = need;
  return out;
}

}  // namespace paradise
