#include "core/morsel.h"

#include <algorithm>
#include <chrono>

namespace paradise {

namespace {

uint32_t ClampMinCells(uint32_t min_cells) {
  return std::max<uint32_t>(1, min_cells);
}

// Upper bound on one parked interval. Normal wakeups still ride the notify;
// the timeout only bounds how long a missed notify or a cancel fired while
// every worker is parked can stall the join.
constexpr std::chrono::milliseconds kParkSlice{5};

}  // namespace

MorselPool::MorselPool(ChunkReadAhead* cursor, const MorselOptions& options)
    : cursor_(cursor),
      min_cells_(ClampMinCells(options.min_cells)),
      cancel_(options.cancel) {}

Result<bool> MorselPool::Next(size_t worker, Morsel* out) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (cancel_ != nullptr) {
      Status st = cancel_->Check();
      if (!st.ok()) {
        // Retire the pool so peers parked on the cv stop waiting for more
        // pieces instead of sleeping out their timeout one by one.
        exhausted_ = true;
        cv_.notify_all();
        return st;
      }
    }
    if (!queue_.empty()) {
      *out = std::move(queue_.front());
      queue_.pop_front();
      ++stats_.morsels;
      if (out->producer != worker) ++stats_.steals;
      return true;
    }
    if (exhausted_) {
      // A worker inside cursor_->Next() may still publish pieces of the
      // last chunk; wait for it rather than retiring this worker early.
      // The wait is bounded: a cancel that fires with every worker parked
      // here (fetching_ > 0 but the fetcher died without decrementing, or
      // its notify was consumed) must not hang the join forever.
      if (fetching_ == 0) return false;
      cv_.wait_for(lk, kParkSlice);
      continue;
    }
    ++fetching_;
    lk.unlock();
    uint64_t chunk_no = 0;
    std::string blob;
    Result<bool> more = cursor_->Next(&chunk_no, &blob);
    lk.lock();
    // Waiters block only while exhausted_ && fetching_ > 0 (a late fetcher
    // may still publish split pieces). Every decrement reaching zero must
    // wake them, even on the no-split path that returns without queueing —
    // a fetcher can obtain the last real chunk after another worker already
    // observed end-of-cursor.
    --fetching_;
    if (fetching_ == 0) cv_.notify_all();
    if (!more.ok()) {
      exhausted_ = true;
      cv_.notify_all();
      return more.status();
    }
    if (!*more) {
      exhausted_ = true;
      cv_.notify_all();
      continue;  // re-check the queue before retiring
    }
    auto shared = std::make_shared<const std::string>(std::move(blob));
    Result<ChunkView> view = ChunkView::Make(*shared);
    if (!view.ok()) {
      exhausted_ = true;
      cv_.notify_all();
      return view.status();
    }
    const uint32_t positions =
        view->sparse() ? view->num_valid() : view->capacity();

    Morsel m;
    m.chunk_no = chunk_no;
    m.blob = std::move(shared);
    m.view = *view;
    m.first = true;
    m.producer = worker;
    if (static_cast<uint64_t>(positions) >= 2ull * min_cells_) {
      m.begin = 0;
      m.end = min_cells_;
      uint64_t extra = 0;
      for (uint32_t begin = min_cells_; begin < positions;) {
        Morsel piece = m;
        piece.first = false;
        piece.begin = begin;
        piece.end = static_cast<uint32_t>(std::min<uint64_t>(
            static_cast<uint64_t>(begin) + min_cells_, positions));
        begin = piece.end;
        queue_.push_back(std::move(piece));
        ++extra;
      }
      stats_.splits += extra;
      cv_.notify_all();
    } else {
      m.begin = 0;
      m.end = positions;
    }
    ++stats_.morsels;
    *out = std::move(m);
    return true;
  }
}

MorselPoolStats MorselPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

SelectionMorselPool::SelectionMorselPool(
    ChunkReadAhead* cursor,
    const std::vector<select_detail::SelectionChunkWork>* work_items,
    const MorselOptions& options)
    : cursor_(cursor),
      work_items_(work_items),
      min_cells_(ClampMinCells(options.min_cells)),
      cancel_(options.cancel) {}

Result<bool> SelectionMorselPool::Next(size_t worker, SelectionMorsel* out) {
  using select_detail::SelectionChunkWork;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (cancel_ != nullptr) {
      Status st = cancel_->Check();
      if (!st.ok()) {
        exhausted_ = true;
        cv_.notify_all();
        return st;
      }
    }
    if (!queue_.empty()) {
      *out = std::move(queue_.front());
      queue_.pop_front();
      ++stats_.morsels;
      if (out->producer != worker) ++stats_.steals;
      return true;
    }
    if (exhausted_) {
      // Bounded for the same reason as MorselPool::Next.
      if (fetching_ == 0) return false;
      cv_.wait_for(lk, kParkSlice);
      continue;
    }
    ++fetching_;
    lk.unlock();
    uint64_t chunk_no = 0;
    std::string blob;
    Result<bool> more = cursor_->Next(&chunk_no, &blob);
    lk.lock();
    // See MorselPool::Next: a decrement to zero must wake waiters even when
    // this fetcher keeps its whole morsel and queues nothing.
    --fetching_;
    if (fetching_ == 0) cv_.notify_all();
    if (!more.ok()) {
      exhausted_ = true;
      cv_.notify_all();
      return more.status();
    }
    if (!*more) {
      exhausted_ = true;
      cv_.notify_all();
      continue;
    }
    auto shared = std::make_shared<const std::string>(std::move(blob));
    Result<ChunkView> view = ChunkView::Make(*shared);
    if (!view.ok()) {
      exhausted_ = true;
      cv_.notify_all();
      return view.status();
    }
    // work_items_ is sorted by chunk_no (PlanSelectionChunks emits in chunk
    // order) and the cursor iterates exactly its chunk numbers.
    const auto it = std::lower_bound(
        work_items_->begin(), work_items_->end(), chunk_no,
        [](const SelectionChunkWork& lhs, uint64_t c) {
          return lhs.chunk_no < c;
        });

    SelectionMorsel m;
    m.work = &*it;
    m.blob = std::move(shared);
    m.view = *view;
    m.first = true;
    m.producer = worker;

    if (m.work->overlap) {
      const size_t n = m.work->slice_begin.size();
      uint64_t candidates = 1;
      size_t split_dim = n;
      for (size_t d = 0; d < n; ++d) {
        const uint32_t width = m.work->slice_end[d] - m.work->slice_begin[d];
        candidates *= width;
        if (split_dim == n && width >= 2) split_dim = d;
      }
      if (split_dim < n && candidates >= 2ull * min_cells_) {
        // Units of the split dimension per piece, so each piece holds about
        // min_cells_ cross-product candidates.
        const uint32_t width =
            m.work->slice_end[split_dim] - m.work->slice_begin[split_dim];
        const uint64_t per_unit = candidates / width;
        const uint32_t unit = static_cast<uint32_t>(std::max<uint64_t>(
            1, min_cells_ / std::max<uint64_t>(1, per_unit)));
        m.split = true;
        m.split_dim = split_dim;
        m.split_begin = m.work->slice_begin[split_dim];
        m.split_end = static_cast<uint32_t>(std::min<uint64_t>(
            static_cast<uint64_t>(m.split_begin) + unit,
            m.work->slice_end[split_dim]));
        uint64_t extra = 0;
        for (uint32_t b = m.split_end; b < m.work->slice_end[split_dim];) {
          SelectionMorsel piece = m;
          piece.first = false;
          piece.split_begin = b;
          piece.split_end = static_cast<uint32_t>(std::min<uint64_t>(
              static_cast<uint64_t>(b) + unit,
              m.work->slice_end[split_dim]));
          b = piece.split_end;
          queue_.push_back(std::move(piece));
          ++extra;
        }
        stats_.splits += extra;
        cv_.notify_all();
      }
    }
    ++stats_.morsels;
    *out = std::move(m);
    return true;
  }
}

MorselPoolStats SelectionMorselPool::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace paradise
