// The OLAP Array consolidation algorithm (paper §4.1): one scan of the
// compressed array; each valid cell's indices are mapped through the
// IndexToIndex arrays to locate its result cell, and the measure is
// aggregated position-based into a flat in-memory result array (the fused
// star-join + group-by + aggregate).
#pragma once

#include <cstdint>

#include "common/cancellation.h"
#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/olap_array.h"
#include "query/query.h"
#include "query/result.h"

namespace paradise {

struct ArrayConsolidateStats {
  uint64_t chunks_read = 0;
  uint64_t cells_scanned = 0;
};

/// Runs a no-selection consolidation. The result array (of AggStates) must
/// fit in memory — the paper makes the same assumption and notes the
/// chunk-by-chunk extension is straightforward (§4.1). `cancel`, when
/// given, is polled at every chunk boundary: the scan stops within one
/// chunk's work and returns the token's typed Status.
Result<query::GroupedResult> ArrayConsolidate(
    const OlapArray& array, const query::ConsolidationQuery& q,
    PhaseTimer* timer = nullptr, ArrayConsolidateStats* stats = nullptr,
    const CancellationToken* cancel = nullptr);

/// Materializes a consolidation's output as a new persistent OlapArray-style
/// chunked array. Grouped dimensions become the result dimensions at their
/// level cardinalities; the cell value is the SUM of the group.
Result<ChunkedArray> MaterializeConsolidation(
    StorageManager* storage, const OlapArray& array,
    const query::ConsolidationQuery& q, const ArrayOptions& options);

/// The paper's full contract (§4.1): "the result of a consolidation
/// operation on an instance of the OLAP Array ADT is another instance of the
/// OLAP Array ADT", complete with its own dimension tables, B-trees and
/// IndexToIndex arrays — so the result cube can be sliced, selected and
/// rolled up further. Each grouped dimension becomes a result dimension
/// whose members are the grouped level's values and whose attributes are the
/// levels at and above the grouped level (assuming the usual functional
/// dependency finer level → coarser level; with non-hierarchical data the
/// coarser attribute of a member is taken from that member's first base
/// element). `dims` are the source cube's dimension tables (they carry the
/// display strings the new dimension tables need); the result is registered
/// in the catalog under `name` and its dimension tables under
/// "dim.<name>.<dim>".
Result<OlapArray> ConsolidateToOlapArray(
    StorageManager* storage, const OlapArray& array,
    const std::vector<const DimensionTable*>& dims,
    const query::ConsolidationQuery& q, const std::string& name,
    const ArrayOptions& options);

}  // namespace paradise
