// Materialized-aggregate registry and query rewriting — the paper's §1
// open problem of using arrays "transparently as a storage alternative or
// index-like query accelerator". Every ConsolidateToOlapArray records its
// provenance (base cube, measure, and which base dimension/level each
// result dimension came from); a later consolidation query against the base
// cube can then be rewritten to run against the (much smaller) aggregate
// when it is derivable from it:
//   * every grouped/selected base dimension is present in the aggregate,
//     grouped at a level at or below the query's levels;
//   * dimensions the aggregate collapsed are untouched by the query;
//   * the aggregate stores SUMs, so only SUM queries of the same measure
//     rewrite.
// Correctness of the dense group codes across the rewrite relies on the
// hierarchy being functionally dependent (finer level determines coarser) —
// the same assumption ConsolidateToOlapArray documents.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "query/query.h"
#include "query/result.h"
#include "storage/storage_manager.h"

namespace paradise {

struct AggregateProvenance {
  std::string name;       // the materialized cube's catalog name
  std::string base_cube;  // the cube it was consolidated from
  size_t measure = 0;     // base measure the sums aggregate

  struct Entry {
    size_t base_dim = 0;   // dimension index in the base cube
    size_t level_col = 0;  // grouped level (base dimension schema column)
  };
  /// One entry per result dimension, in result-dimension order.
  std::vector<Entry> grouped;

  std::string Serialize() const;
  static Result<AggregateProvenance> Deserialize(std::string_view data);
};

/// Persists provenance under catalog key "agg.<name>".
Status RegisterAggregate(StorageManager* storage,
                         const AggregateProvenance& provenance);

/// All registered aggregates (any base cube).
Result<std::vector<AggregateProvenance>> ListAggregates(
    StorageManager* storage);

/// If `q` (a query against the base cube with `base_num_dims` dimensions)
/// is derivable from `agg`, returns the rewritten query against the
/// aggregate cube; nullopt otherwise.
std::optional<query::ConsolidationQuery> RewriteForAggregate(
    const query::ConsolidationQuery& q, const AggregateProvenance& agg,
    size_t base_num_dims);

/// Scans the registry for aggregates of `base_cube` that can answer `q`,
/// opens the one with the smallest cell space, runs the rewritten query and
/// returns its result — or nullopt if no aggregate applies. `used` (if
/// non-null) receives the chosen aggregate's name.
Result<std::optional<query::GroupedResult>> AnswerFromAggregates(
    StorageManager* storage, const std::string& base_cube,
    const query::ConsolidationQuery& q, std::string* used = nullptr);

}  // namespace paradise
