#include "core/olap_array.h"

#include <cstring>

#include "common/coding.h"

namespace paradise {

namespace {
// Meta blob layout:
//   [0,4)  magic "OLAP"
//   [4,8)  dimension count
//   per dimension:
//     fixed32 name length + name bytes
//     fixed32 schema blob length + schema blob
//     fixed64 key B-tree root
//     per column (schema order): fixed64 attribute B-tree root
//       (kInvalidPageId for column 0)
//     IndexToIndexArray blob (self-delimiting)
//   fixed32 measure count, then per measure a fixed64 chunked-array meta
//   ObjectId
constexpr char kMagic[4] = {'O', 'L', 'A', 'P'};
}  // namespace

OlapArray::Builder::Builder(StorageManager* storage, std::string name,
                            std::vector<const DimensionTable*> dims,
                            std::vector<uint32_t> chunk_extents,
                            ArrayOptions options, size_t num_measures)
    : storage_(storage),
      name_(std::move(name)),
      dims_(std::move(dims)),
      chunk_extents_(std::move(chunk_extents)),
      options_(options),
      num_measures_(num_measures) {}

Status OlapArray::Builder::Init() {
  if (initialized_) return Status::InvalidArgument("Builder already Init()ed");
  PARADISE_RETURN_IF_ERROR(options_.Validate());
  if (dims_.empty()) {
    return Status::InvalidArgument("OLAP array needs at least one dimension");
  }
  std::vector<uint32_t> sizes;
  sizes.reserve(dims_.size());
  for (const DimensionTable* dim : dims_) {
    if (dim->num_rows() == 0) {
      return Status::InvalidArgument("dimension '" + dim->name() +
                                     "' is empty");
    }
    sizes.push_back(dim->num_rows());
  }
  if (chunk_extents_.empty()) {
    chunk_extents_.assign(dims_.size(), options_.default_chunk_extent);
  }
  if (num_measures_ == 0) {
    return Status::InvalidArgument("OLAP array needs at least one measure");
  }
  PARADISE_ASSIGN_OR_RETURN(ChunkLayout layout,
                            ChunkLayout::Make(sizes, chunk_extents_));
  array_builders_.reserve(num_measures_);
  for (size_t m = 0; m < num_measures_; ++m) {
    array_builders_.push_back(
        std::make_unique<ChunkedArray::Builder>(storage_, layout, options_));
  }

  key_btrees_.reserve(dims_.size());
  attr_btree_roots_.resize(dims_.size());
  i2i_.reserve(dims_.size());
  for (size_t d = 0; d < dims_.size(); ++d) {
    const DimensionTable& dim = *dims_[d];
    // Key B-tree: dimension key -> base array index (= row position).
    PARADISE_ASSIGN_OR_RETURN(BTree key_tree,
                              BTree::Create(storage_->pool()));
    for (uint32_t row = 0; row < dim.num_rows(); ++row) {
      PARADISE_RETURN_IF_ERROR(
          key_tree.Insert(dim.rows()[row].GetInt32(0), row));
    }
    key_btrees_.push_back(std::move(key_tree));

    // Attribute B-trees: normalized attribute value -> base array index.
    attr_btree_roots_[d].assign(dim.schema().num_columns(), kInvalidPageId);
    for (size_t col = 1; col < dim.schema().num_columns(); ++col) {
      PARADISE_ASSIGN_OR_RETURN(BTree attr_tree,
                                BTree::Create(storage_->pool()));
      for (uint32_t row = 0; row < dim.num_rows(); ++row) {
        PARADISE_ASSIGN_OR_RETURN(
            int64_t norm, dim.NormalizedValue(dim.rows()[row].ref(), col));
        PARADISE_RETURN_IF_ERROR(attr_tree.Insert(norm, row));
      }
      attr_btree_roots_[d][col] = attr_tree.root();
    }

    PARADISE_ASSIGN_OR_RETURN(IndexToIndexArray i2i,
                              IndexToIndexArray::FromDimension(dim));
    i2i_.push_back(std::move(i2i));
  }
  initialized_ = true;
  return Status::OK();
}

Status OlapArray::Builder::PutByKeys(const std::vector<int32_t>& keys,
                                     int64_t value) {
  return PutByKeys(keys, std::vector<int64_t>{value});
}

Status OlapArray::Builder::PutByKeys(const std::vector<int32_t>& keys,
                                     const std::vector<int64_t>& values) {
  if (!initialized_) return Status::InvalidArgument("call Init() first");
  if (keys.size() != dims_.size()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  if (values.size() != num_measures_) {
    return Status::InvalidArgument("measure arity mismatch: got " +
                                   std::to_string(values.size()) +
                                   ", expected " +
                                   std::to_string(num_measures_));
  }
  CellCoords coords(keys.size());
  for (size_t d = 0; d < keys.size(); ++d) {
    PARADISE_ASSIGN_OR_RETURN(coords[d], dims_[d]->RowOfKey(keys[d]));
  }
  for (size_t m = 0; m < num_measures_; ++m) {
    PARADISE_RETURN_IF_ERROR(array_builders_[m]->Put(coords, values[m]));
  }
  return Status::OK();
}

Status OlapArray::Builder::PutByIndices(const CellCoords& coords,
                                        int64_t value) {
  if (!initialized_) return Status::InvalidArgument("call Init() first");
  if (num_measures_ != 1) {
    return Status::InvalidArgument(
        "PutByIndices is single-measure; use PutByKeys for p > 1");
  }
  return array_builders_[0]->Put(coords, value);
}

Result<OlapArray> OlapArray::Builder::Finish() {
  if (!initialized_) return Status::InvalidArgument("call Init() first");
  std::vector<ChunkedArray> arrays;
  arrays.reserve(num_measures_);
  for (size_t m = 0; m < num_measures_; ++m) {
    PARADISE_ASSIGN_OR_RETURN(ChunkedArray array, array_builders_[m]->Finish());
    arrays.push_back(std::move(array));
  }

  OlapArray out;
  out.storage_ = storage_;
  out.name_ = name_;
  for (const DimensionTable* dim : dims_) {
    out.dim_names_.push_back(dim->name());
    out.dim_schemas_.push_back(dim->schema());
  }
  out.key_btrees_ = std::move(key_btrees_);
  out.attr_btree_roots_ = std::move(attr_btree_roots_);
  out.i2i_ = std::move(i2i_);
  out.arrays_ = std::move(arrays);

  PARADISE_ASSIGN_OR_RETURN(ObjectId meta_oid,
                            storage_->objects()->Create(out.SerializeMeta()));
  PARADISE_RETURN_IF_ERROR(storage_->SetRoot("olap_array." + name_, meta_oid));
  initialized_ = false;
  return out;
}

std::string OlapArray::SerializeMeta() const {
  std::string meta;
  meta.append(kMagic, sizeof(kMagic));
  AppendFixed32(&meta, static_cast<uint32_t>(dim_names_.size()));
  for (size_t d = 0; d < dim_names_.size(); ++d) {
    AppendFixed32(&meta, static_cast<uint32_t>(dim_names_[d].size()));
    meta.append(dim_names_[d]);
    const std::string schema_blob = dim_schemas_[d].Serialize();
    AppendFixed32(&meta, static_cast<uint32_t>(schema_blob.size()));
    meta.append(schema_blob);
    AppendFixed64(&meta, key_btrees_[d].root());
    for (PageId root : attr_btree_roots_[d]) AppendFixed64(&meta, root);
    meta.append(i2i_[d].Serialize());
  }
  AppendFixed32(&meta, static_cast<uint32_t>(arrays_.size()));
  for (const ChunkedArray& array : arrays_) {
    AppendFixed64(&meta, array.meta_oid());
  }
  return meta;
}

Result<ObjectId> OlapArray::PublishMeta() {
  // Copy-on-write republication: a compaction gave the measure arrays new
  // meta objects, so the ADT meta (which embeds their oids) is re-serialized
  // into a NEW object and the catalog root repointed at it. The previous
  // meta object stays readable for crash recovery until the caller retires
  // it after the next checkpoint commits.
  PARADISE_ASSIGN_OR_RETURN(ObjectId old_meta,
                            storage_->GetRoot("olap_array." + name_));
  PARADISE_ASSIGN_OR_RETURN(ObjectId meta_oid,
                            storage_->objects()->Create(SerializeMeta()));
  PARADISE_RETURN_IF_ERROR(storage_->SetRoot("olap_array." + name_, meta_oid));
  return old_meta;
}

Result<OlapArray> OlapArray::Open(StorageManager* storage,
                                  const std::string& name) {
  PARADISE_ASSIGN_OR_RETURN(uint64_t meta_oid,
                            storage->GetRoot("olap_array." + name));
  PARADISE_ASSIGN_OR_RETURN(std::string blob,
                            storage->objects()->Read(meta_oid));
  if (blob.size() < 8 || std::memcmp(blob.data(), kMagic, 4) != 0) {
    return Status::Corruption("object is not an OLAP array meta blob");
  }
  OlapArray out;
  out.storage_ = storage;
  out.name_ = name;
  const uint32_t num_dims = DecodeFixed32(blob.data() + 4);
  const char* p = blob.data() + 8;
  const char* end = blob.data() + blob.size();
  auto read32 = [&]() -> uint32_t {
    const uint32_t v = DecodeFixed32(p);
    p += 4;
    return v;
  };
  auto read64 = [&]() -> uint64_t {
    const uint64_t v = DecodeFixed64(p);
    p += 8;
    return v;
  };
  for (uint32_t d = 0; d < num_dims; ++d) {
    if (p + 4 > end) return Status::Corruption("OLAP meta truncated");
    const uint32_t name_len = read32();
    if (p + name_len + 4 > end) return Status::Corruption("meta truncated");
    out.dim_names_.emplace_back(p, name_len);
    p += name_len;
    const uint32_t schema_len = read32();
    if (p + schema_len + 8 > end) return Status::Corruption("meta truncated");
    PARADISE_ASSIGN_OR_RETURN(Schema schema,
                              Schema::Deserialize({p, schema_len}));
    p += schema_len;
    const PageId key_root = read64();
    PARADISE_ASSIGN_OR_RETURN(BTree key_tree,
                              BTree::Open(storage->pool(), key_root));
    out.key_btrees_.push_back(std::move(key_tree));
    std::vector<PageId> attr_roots(schema.num_columns());
    for (size_t col = 0; col < schema.num_columns(); ++col) {
      if (p + 8 > end) return Status::Corruption("meta truncated");
      attr_roots[col] = read64();
    }
    out.attr_btree_roots_.push_back(std::move(attr_roots));
    out.dim_schemas_.push_back(std::move(schema));
    size_t consumed = 0;
    PARADISE_ASSIGN_OR_RETURN(
        IndexToIndexArray i2i,
        IndexToIndexArray::Deserialize({p, static_cast<size_t>(end - p)},
                                       &consumed));
    p += consumed;
    out.i2i_.push_back(std::move(i2i));
  }
  if (p + 4 > end) return Status::Corruption("meta truncated");
  const uint32_t num_measures = read32();
  if (num_measures == 0) return Status::Corruption("OLAP array without measures");
  for (uint32_t m = 0; m < num_measures; ++m) {
    if (p + 8 > end) return Status::Corruption("meta truncated");
    const ObjectId array_meta = read64();
    PARADISE_ASSIGN_OR_RETURN(ChunkedArray array,
                              ChunkedArray::Open(storage, array_meta));
    out.arrays_.push_back(std::move(array));
  }
  return out;
}

std::vector<size_t> OlapArray::DimNumColumns() const {
  std::vector<size_t> out;
  out.reserve(dim_schemas_.size());
  for (const Schema& s : dim_schemas_) out.push_back(s.num_columns());
  return out;
}

Result<std::optional<uint32_t>> OlapArray::KeyToIndex(size_t d,
                                                      int32_t key) const {
  PARADISE_ASSIGN_OR_RETURN(std::optional<int64_t> idx,
                            key_btrees_[d].GetFirst(key));
  if (!idx.has_value()) return std::optional<uint32_t>{};
  return std::optional<uint32_t>(static_cast<uint32_t>(*idx));
}

Status OlapArray::AttrIndexList(size_t d, size_t col, int64_t normalized_value,
                                std::vector<uint32_t>* out) const {
  if (d >= num_dims() || col == 0 ||
      col >= dim_schemas_[d].num_columns()) {
    return Status::InvalidArgument("bad dimension/column for AttrIndexList");
  }
  PARADISE_ASSIGN_OR_RETURN(BTree tree,
                            BTree::Open(storage_->pool(),
                                        attr_btree_roots_[d][col]));
  std::vector<int64_t> values;
  PARADISE_RETURN_IF_ERROR(tree.GetValues(normalized_value, &values));
  out->reserve(out->size() + values.size());
  for (int64_t v : values) out->push_back(static_cast<uint32_t>(v));
  return Status::OK();
}

Result<std::optional<int64_t>> OlapArray::ReadCellByKeys(
    const std::vector<int32_t>& keys, size_t m) const {
  if (keys.size() != num_dims()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  if (m >= arrays_.size()) {
    return Status::InvalidArgument("bad measure index " + std::to_string(m));
  }
  CellCoords coords(keys.size());
  for (size_t d = 0; d < keys.size(); ++d) {
    PARADISE_ASSIGN_OR_RETURN(std::optional<uint32_t> idx,
                              KeyToIndex(d, keys[d]));
    if (!idx.has_value()) {
      return Status::NotFound("key " + std::to_string(keys[d]) +
                              " not in dimension " + dim_names_[d]);
    }
    coords[d] = *idx;
  }
  return arrays_[m].GetCell(coords);
}

Status OlapArray::WriteCellByKeys(const std::vector<int32_t>& keys,
                                  int64_t value, size_t m) {
  if (keys.size() != num_dims()) {
    return Status::InvalidArgument("key arity mismatch");
  }
  if (m >= arrays_.size()) {
    return Status::InvalidArgument("bad measure index " + std::to_string(m));
  }
  CellCoords coords(keys.size());
  for (size_t d = 0; d < keys.size(); ++d) {
    PARADISE_ASSIGN_OR_RETURN(std::optional<uint32_t> idx,
                              KeyToIndex(d, keys[d]));
    if (!idx.has_value()) {
      return Status::NotFound("key " + std::to_string(keys[d]) +
                              " not in dimension " + dim_names_[d]);
    }
    coords[d] = *idx;
  }
  PARADISE_RETURN_IF_ERROR(arrays_[m].PutCell(coords, value));
  return arrays_[m].Sync();
}

}  // namespace paradise
