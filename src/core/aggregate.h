// GroupSpec: the shape of a consolidation's result array — which dimensions
// are grouped, at which hierarchy level, the level cardinalities, and the
// row-major strides of the flat result array the array engine aggregates
// into position-based (paper §4.1: "each element of the result array is a
// 'group'").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/olap_array.h"
#include "query/query.h"
#include "query/result.h"

namespace paradise {

struct GroupSpec {
  std::vector<size_t> grouped_dims;   // dimensions with a group-by, in order
  std::vector<size_t> group_cols;     // grouped attribute column per entry
  std::vector<int32_t> cardinalities; // level cardinality per entry
  std::vector<uint64_t> strides;      // row-major strides into the flat array
  uint64_t num_groups = 1;            // product of cardinalities

  /// Derives the spec from a validated query against `array`.
  static Result<GroupSpec> Make(const OlapArray& array,
                                const query::ConsolidationQuery& q);

  /// "<dim>.<attr>" labels for the result columns.
  std::vector<std::string> GroupColumnNames(const OlapArray& array) const;

  /// Decodes a flat result index back into group codes.
  std::vector<int32_t> Decode(uint64_t flat) const;
};

/// Turns the flat result array into a canonical GroupedResult, dropping
/// empty groups (cells no input mapped to).
query::GroupedResult FlatToGroupedResult(const GroupSpec& spec,
                                         const std::vector<query::AggState>& flat,
                                         std::vector<std::string> columns);

}  // namespace paradise
