#include "core/aggregate_registry.h"

#include "common/coding.h"
#include "core/consolidate.h"
#include "core/consolidate_select.h"
#include "core/olap_array.h"

namespace paradise {

namespace {
constexpr char kCatalogPrefix[] = "agg.";

void AppendString(std::string* out, const std::string& s) {
  char scratch[4];
  EncodeFixed32(scratch, static_cast<uint32_t>(s.size()));
  out->append(scratch, 4);
  out->append(s);
}
}  // namespace

std::string AggregateProvenance::Serialize() const {
  std::string out;
  AppendString(&out, name);
  AppendString(&out, base_cube);
  char scratch[4];
  EncodeFixed32(scratch, static_cast<uint32_t>(measure));
  out.append(scratch, 4);
  EncodeFixed32(scratch, static_cast<uint32_t>(grouped.size()));
  out.append(scratch, 4);
  for (const Entry& e : grouped) {
    EncodeFixed32(scratch, static_cast<uint32_t>(e.base_dim));
    out.append(scratch, 4);
    EncodeFixed32(scratch, static_cast<uint32_t>(e.level_col));
    out.append(scratch, 4);
  }
  return out;
}

Result<AggregateProvenance> AggregateProvenance::Deserialize(
    std::string_view data) {
  const char* p = data.data();
  const char* end = data.data() + data.size();
  auto read_string = [&](std::string* out) -> Status {
    if (p + 4 > end) return Status::Corruption("provenance truncated");
    const uint32_t len = DecodeFixed32(p);
    p += 4;
    if (len > static_cast<size_t>(end - p)) {
      return Status::Corruption("provenance truncated");
    }
    out->assign(p, len);
    p += len;
    return Status::OK();
  };
  AggregateProvenance out;
  PARADISE_RETURN_IF_ERROR(read_string(&out.name));
  PARADISE_RETURN_IF_ERROR(read_string(&out.base_cube));
  if (p + 8 > end) return Status::Corruption("provenance truncated");
  out.measure = DecodeFixed32(p);
  p += 4;
  const uint32_t count = DecodeFixed32(p);
  p += 4;
  if (count > static_cast<size_t>(end - p) / 8) {
    return Status::Corruption("provenance entry count implausible");
  }
  for (uint32_t i = 0; i < count; ++i) {
    Entry e;
    e.base_dim = DecodeFixed32(p);
    e.level_col = DecodeFixed32(p + 4);
    p += 8;
    out.grouped.push_back(e);
  }
  return out;
}

Status RegisterAggregate(StorageManager* storage,
                         const AggregateProvenance& provenance) {
  const std::string blob = provenance.Serialize();
  const std::string key = kCatalogPrefix + provenance.name;
  if (storage->HasRoot(key)) {
    PARADISE_ASSIGN_OR_RETURN(uint64_t oid, storage->GetRoot(key));
    return storage->objects()->Overwrite(oid, blob);
  }
  PARADISE_ASSIGN_OR_RETURN(ObjectId oid, storage->objects()->Create(blob));
  return storage->SetRoot(key, oid);
}

Result<std::vector<AggregateProvenance>> ListAggregates(
    StorageManager* storage) {
  std::vector<AggregateProvenance> out;
  for (const auto& [key, oid] : storage->catalog()) {
    if (key.rfind(kCatalogPrefix, 0) != 0) continue;
    PARADISE_ASSIGN_OR_RETURN(std::string blob, storage->objects()->Read(oid));
    PARADISE_ASSIGN_OR_RETURN(AggregateProvenance provenance,
                              AggregateProvenance::Deserialize(blob));
    out.push_back(std::move(provenance));
  }
  return out;
}

std::optional<query::ConsolidationQuery> RewriteForAggregate(
    const query::ConsolidationQuery& q, const AggregateProvenance& agg,
    size_t base_num_dims) {
  if (q.dims.size() != base_num_dims) return std::nullopt;
  // Only SUM of the materialized measure is derivable from stored sums.
  if (q.agg != query::AggFunc::kSum || q.measure != agg.measure) {
    return std::nullopt;
  }
  // Locate each base dimension in the aggregate.
  std::vector<int> result_dim_of_base(base_num_dims, -1);
  for (size_t r = 0; r < agg.grouped.size(); ++r) {
    if (agg.grouped[r].base_dim >= base_num_dims) return std::nullopt;
    result_dim_of_base[agg.grouped[r].base_dim] = static_cast<int>(r);
  }

  query::ConsolidationQuery rewritten;
  rewritten.dims.resize(agg.grouped.size());
  rewritten.agg = query::AggFunc::kSum;
  rewritten.measure = 0;

  for (size_t d = 0; d < base_num_dims; ++d) {
    const query::DimensionQuery& dq = q.dims[d];
    const int r = result_dim_of_base[d];
    if (r < 0) {
      // The aggregate collapsed this dimension: the query must not need it.
      if (dq.group_by_col.has_value() || !dq.selections.empty()) {
        return std::nullopt;
      }
      continue;
    }
    const size_t level = agg.grouped[r].level_col;
    // The result dimension's schema is: key + levels [level .. top], so a
    // base column c >= level maps to result column c - level + 1.
    if (dq.group_by_col.has_value()) {
      if (*dq.group_by_col < level) return std::nullopt;  // finer than stored
      rewritten.dims[r].group_by_col = *dq.group_by_col - level + 1;
    }
    for (const query::Selection& s : dq.selections) {
      if (s.attr_col < level) return std::nullopt;
      rewritten.dims[r].selections.push_back(
          query::Selection{s.attr_col - level + 1, s.values});
    }
  }
  return rewritten;
}

Result<std::optional<query::GroupedResult>> AnswerFromAggregates(
    StorageManager* storage, const std::string& base_cube,
    const query::ConsolidationQuery& q, std::string* used) {
  PARADISE_ASSIGN_OR_RETURN(std::vector<AggregateProvenance> aggregates,
                            ListAggregates(storage));
  // Pick the applicable aggregate with the fewest result dimensions (a
  // proxy for size); ties broken by name for determinism.
  const AggregateProvenance* best = nullptr;
  query::ConsolidationQuery best_query;
  for (const AggregateProvenance& agg : aggregates) {
    if (agg.base_cube != base_cube) continue;
    std::optional<query::ConsolidationQuery> rewritten =
        RewriteForAggregate(q, agg, q.dims.size());
    if (!rewritten.has_value()) continue;
    if (best == nullptr ||
        agg.grouped.size() < best->grouped.size() ||
        (agg.grouped.size() == best->grouped.size() &&
         agg.name < best->name)) {
      best = &agg;
      best_query = std::move(*rewritten);
    }
  }
  if (best == nullptr) return std::optional<query::GroupedResult>{};
  PARADISE_ASSIGN_OR_RETURN(OlapArray cube,
                            OlapArray::Open(storage, best->name));
  if (used != nullptr) *used = best->name;
  if (best_query.HasSelection()) {
    PARADISE_ASSIGN_OR_RETURN(query::GroupedResult result,
                              ArrayConsolidateWithSelection(cube, best_query));
    return std::optional<query::GroupedResult>(std::move(result));
  }
  PARADISE_ASSIGN_OR_RETURN(query::GroupedResult result,
                            ArrayConsolidate(cube, best_query));
  return std::optional<query::GroupedResult>(std::move(result));
}

}  // namespace paradise
