// The remaining §3.5 ADT functions: slicing (fix one dimension to a member)
// and subset summation over a coordinate box. Both walk only the chunks that
// intersect the requested region.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/olap_array.h"
#include "query/result.h"

namespace paradise {

/// One cell of a slice result: full base coordinates plus the measure.
struct SliceCell {
  CellCoords coords;
  int64_t value;
};

/// Half-open index range per dimension.
using IndexBox = std::vector<std::pair<uint32_t, uint32_t>>;

/// All valid cells whose index along dimension `dim` equals the base index
/// of dimension key `key`, in chunk order.
Result<std::vector<SliceCell>> ArraySlice(const OlapArray& array, size_t dim,
                                          int32_t key);

/// Aggregate of all valid cells inside `box` (one [lo, hi) range per
/// dimension). Returns full AggState so any AggFunc can be finalized.
Result<query::AggState> ArraySumSubset(const OlapArray& array,
                                       const IndexBox& box);

}  // namespace paradise
