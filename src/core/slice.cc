#include "core/slice.h"

#include <algorithm>

namespace paradise {

namespace {

Status ValidateBox(const ChunkLayout& layout, const IndexBox& box) {
  if (box.size() != layout.num_dims()) {
    return Status::InvalidArgument("box arity mismatch");
  }
  for (size_t d = 0; d < box.size(); ++d) {
    if (box[d].first > box[d].second || box[d].second > layout.dims()[d]) {
      return Status::InvalidArgument("bad range on dimension " +
                                     std::to_string(d));
    }
  }
  return Status::OK();
}

/// Visits every valid cell inside `box`, skipping chunks outside it.
/// `fn(const CellCoords&, int64_t)` returns Status.
template <typename Fn>
Status VisitBox(const OlapArray& array, const IndexBox& box, Fn&& fn) {
  const ChunkLayout& layout = array.layout();
  PARADISE_RETURN_IF_ERROR(ValidateBox(layout, box));
  const size_t n = layout.num_dims();
  for (uint64_t chunk_no = 0; chunk_no < layout.num_chunks(); ++chunk_no) {
    if (array.array().ChunkIsEmpty(chunk_no)) continue;
    const CellCoords base = layout.ChunkBase(chunk_no);
    const CellCoords cdims = layout.ChunkDims(chunk_no);
    bool overlaps = true;
    for (size_t d = 0; d < n; ++d) {
      if (base[d] >= box[d].second || base[d] + cdims[d] <= box[d].first) {
        overlaps = false;
        break;
      }
    }
    if (!overlaps) continue;
    PARADISE_ASSIGN_OR_RETURN(Chunk chunk, array.array().ReadChunk(chunk_no));
    CellCoords coords(n);
    for (const ChunkEntry& e : chunk.entries()) {
      // Decode the offset into coordinates and test the box.
      uint32_t offset = e.offset;
      bool inside = true;
      for (size_t i = n; i > 0; --i) {
        const size_t d = i - 1;
        coords[d] = base[d] + offset % cdims[d];
        offset /= cdims[d];
        if (coords[d] < box[d].first || coords[d] >= box[d].second) {
          inside = false;
        }
      }
      if (!inside) continue;
      PARADISE_RETURN_IF_ERROR(fn(coords, e.value));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<SliceCell>> ArraySlice(const OlapArray& array, size_t dim,
                                          int32_t key) {
  if (dim >= array.num_dims()) {
    return Status::InvalidArgument("bad dimension " + std::to_string(dim));
  }
  PARADISE_ASSIGN_OR_RETURN(std::optional<uint32_t> idx,
                            array.KeyToIndex(dim, key));
  if (!idx.has_value()) {
    return Status::NotFound("key " + std::to_string(key) +
                            " not in dimension " + array.dim_name(dim));
  }
  IndexBox box;
  const ChunkLayout& layout = array.layout();
  for (size_t d = 0; d < layout.num_dims(); ++d) {
    if (d == dim) {
      box.emplace_back(*idx, *idx + 1);
    } else {
      box.emplace_back(0, layout.dims()[d]);
    }
  }
  std::vector<SliceCell> out;
  PARADISE_RETURN_IF_ERROR(
      VisitBox(array, box, [&](const CellCoords& coords, int64_t value) {
        out.push_back(SliceCell{coords, value});
        return Status::OK();
      }));
  return out;
}

Result<query::AggState> ArraySumSubset(const OlapArray& array,
                                       const IndexBox& box) {
  query::AggState agg;
  PARADISE_RETURN_IF_ERROR(
      VisitBox(array, box, [&](const CellCoords&, int64_t value) {
        agg.Add(value);
        return Status::OK();
      }));
  return agg;
}

}  // namespace paradise
