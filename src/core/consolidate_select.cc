#include "core/consolidate_select.h"

#include <algorithm>
#include <optional>

namespace paradise {

namespace select_detail {

namespace {

/// Sorted intersection of two sorted index lists.
std::vector<uint32_t> Intersect(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Resolves one dimension's final index list: union over each selection's
/// values, intersection across selections; full range when unselected.
Status FinalIndexList(const OlapArray& array, size_t d,
                      const query::DimensionQuery& dq,
                      std::vector<uint32_t>* out) {
  const uint32_t size = array.layout().dims()[d];
  if (dq.selections.empty()) {
    out->resize(size);
    for (uint32_t i = 0; i < size; ++i) (*out)[i] = i;
    return Status::OK();
  }
  bool first = true;
  for (const query::Selection& s : dq.selections) {
    std::vector<uint32_t> list;
    for (const query::Literal& lit : s.values) {
      PARADISE_RETURN_IF_ERROR(array.AttrIndexList(
          d, s.attr_col, query::NormalizeLiteral(lit), &list));
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    if (first) {
      *out = std::move(list);
      first = false;
    } else {
      *out = Intersect(*out, list);
    }
  }
  return Status::OK();
}

}  // namespace

Result<SelectionPlan> MakeSelectionPlan(const OlapArray& array,
                                        const query::ConsolidationQuery& q,
                                        const GroupSpec& spec) {
  SelectionPlan plan;
  const size_t n = array.layout().num_dims();
  plan.lists.resize(n);
  for (size_t d = 0; d < n; ++d) {
    PARADISE_RETURN_IF_ERROR(
        FinalIndexList(array, d, q.dims[d], &plan.lists[d]));
    if (plan.lists[d].empty()) {
      // Empty cross-product: nothing qualifies.
      plan.empty = true;
      return plan;
    }
  }
  // Precompute group-code contributions per dimension index so each hit is a
  // few array lookups plus adds (position-based aggregation).
  plan.level_maps.resize(spec.grouped_dims.size());
  for (size_t g = 0; g < spec.grouped_dims.size(); ++g) {
    plan.level_maps[g] =
        &array.i2i(spec.grouped_dims[g]).MapColumn(spec.group_cols[g]);
  }
  return plan;
}

std::vector<SelectionChunkWork> PlanSelectionChunks(
    const OlapArray& array, const query::ConsolidationQuery& q,
    const SelectionPlan& plan, const ArraySelectOptions& options,
    ArraySelectStats* stats) {
  const ChunkLayout& layout = array.layout();
  const size_t n = layout.num_dims();
  std::vector<SelectionChunkWork> out;
  for (uint64_t chunk_no = 0; chunk_no < layout.num_chunks(); ++chunk_no) {
    if (array.array(q.measure).ChunkIsEmpty(chunk_no)) continue;
    const CellCoords base = layout.ChunkBase(chunk_no);
    const CellCoords cdims = layout.ChunkDims(chunk_no);

    // §4.2 optimization 1: compute each dimension list's overlap with this
    // chunk's coordinate box; an empty overlap means the chunk holds no
    // cross-product element and need not be read.
    SelectionChunkWork work;
    work.chunk_no = chunk_no;
    work.slice_begin.resize(n);
    work.slice_end.resize(n);
    for (size_t d = 0; d < n; ++d) {
      const auto& list = plan.lists[d];
      const auto lo = std::lower_bound(list.begin(), list.end(), base[d]);
      const auto hi = std::lower_bound(lo, list.end(), base[d] + cdims[d]);
      work.slice_begin[d] = static_cast<uint32_t>(lo - list.begin());
      work.slice_end[d] = static_cast<uint32_t>(hi - list.begin());
      if (lo == hi) work.overlap = false;
    }
    if (!work.overlap && options.skip_non_overlapping_chunks) {
      if (stats != nullptr) ++stats->chunks_skipped;
      continue;
    }
    out.push_back(std::move(work));
  }
  return out;
}

Status ProbeSelectionChunk(const OlapArray& array, const GroupSpec& spec,
                           const SelectionPlan& plan,
                           const SelectionChunkWork& work,
                           const std::string& blob,
                           std::vector<query::AggState>* flat,
                           ArraySelectStats* stats) {
  PARADISE_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Make(blob));
  if (stats != nullptr) ++stats->chunks_read;
  if (!work.overlap) return Status::OK();  // ablation path: nothing to probe
  return ProbeSelectionRange(array, spec, plan, work, view, flat, stats);
}

Status ProbeSelectionRange(const OlapArray& array, const GroupSpec& spec,
                           const SelectionPlan& plan,
                           const SelectionChunkWork& work,
                           const ChunkView& view,
                           std::vector<query::AggState>* flat,
                           ArraySelectStats* stats) {
  const ChunkLayout& layout = array.layout();
  const size_t n = layout.num_dims();
  const CellCoords base = layout.ChunkBase(work.chunk_no);
  const CellCoords cdims = layout.ChunkDims(work.chunk_no);

  // Row-major local strides of this chunk.
  std::vector<uint32_t> local_strides(n);
  uint32_t s = 1;
  for (size_t i = n; i > 0; --i) {
    local_strides[i - 1] = s;
    s *= cdims[i - 1];
  }

  // §4.2 optimizations 2+3: enumerate cross-product elements in increasing
  // chunk-offset order (row-major odometer over the list slices) and probe
  // the sorted stored chunk with a forward-moving binary search directly on
  // the serialized bytes.
  const auto& lists = plan.lists;
  const bool sparse = view.sparse();
  uint32_t probe_pos = 0;
  std::vector<uint32_t> pos(n);
  for (size_t d = 0; d < n; ++d) pos[d] = work.slice_begin[d];
  bool done = false;
  while (!done) {
    uint32_t offset = 0;
    for (size_t d = 0; d < n; ++d) {
      offset += (lists[d][pos[d]] - base[d]) * local_strides[d];
    }
    if (stats != nullptr) ++stats->candidates;
    std::optional<int64_t> hit;
    if (sparse) {
      probe_pos = view.SparseLowerBound(offset, probe_pos);
      if (probe_pos < view.num_valid()) {
        const ChunkEntry e = view.SparseEntry(probe_pos);
        if (e.offset == offset) hit = e.value;
      }
    } else {
      hit = view.Get(offset);
    }
    if (hit.has_value()) {
      uint64_t flat_idx = 0;
      for (size_t g = 0; g < spec.grouped_dims.size(); ++g) {
        const size_t gd = spec.grouped_dims[g];
        flat_idx += static_cast<uint64_t>(
                        (*plan.level_maps[g])[lists[gd][pos[gd]]]) *
                    spec.strides[g];
      }
      (*flat)[flat_idx].Add(*hit);
      if (stats != nullptr) ++stats->hits;
    }
    if (sparse && probe_pos >= view.num_valid()) {
      break;  // no later offset can match
    }
    // Advance the odometer (last dimension fastest).
    size_t d = n - 1;
    for (;;) {
      if (++pos[d] < work.slice_end[d]) break;
      pos[d] = work.slice_begin[d];
      if (d == 0) {
        done = true;
        break;
      }
      --d;
    }
  }
  return Status::OK();
}

}  // namespace select_detail

Result<query::GroupedResult> ArrayConsolidateWithSelection(
    const OlapArray& array, const query::ConsolidationQuery& q,
    PhaseTimer* timer, ArraySelectStats* stats,
    const ArraySelectOptions& options) {
  using select_detail::MakeSelectionPlan;
  using select_detail::PlanSelectionChunks;
  using select_detail::ProbeSelectionChunk;
  using select_detail::SelectionChunkWork;
  using select_detail::SelectionPlan;

  if (!q.HasSelection()) {
    return Status::InvalidArgument(
        "ArrayConsolidateWithSelection requires a selection; use "
        "ArrayConsolidate");
  }
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));

  // Phase 1: B-tree index lookups and list merging.
  SelectionPlan plan;
  {
    ScopedPhase phase(timer, "index-lookup");
    PARADISE_ASSIGN_OR_RETURN(plan, MakeSelectionPlan(array, q, spec));
    if (plan.empty) {
      return FlatToGroupedResult(spec, {}, spec.GroupColumnNames(array));
    }
  }

  std::vector<query::AggState> flat(spec.num_groups);
  {
    ScopedPhase phase(timer, "probe+aggregate");
    const std::vector<SelectionChunkWork> chunks =
        PlanSelectionChunks(array, q, plan, options, stats);
    for (const SelectionChunkWork& work : chunks) {
      if (options.cancel != nullptr) {
        PARADISE_RETURN_IF_ERROR(options.cancel->Check());
      }
      PARADISE_ASSIGN_OR_RETURN(
          std::string blob, array.array(q.measure).ReadChunkBlob(work.chunk_no));
      PARADISE_RETURN_IF_ERROR(
          ProbeSelectionChunk(array, spec, plan, work, blob, &flat, stats));
    }
  }

  {
    ScopedPhase phase(timer, "emit");
    return FlatToGroupedResult(spec, flat, spec.GroupColumnNames(array));
  }
}

}  // namespace paradise
