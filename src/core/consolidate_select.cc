#include "core/consolidate_select.h"

#include <algorithm>

#include "core/aggregate.h"

namespace paradise {

namespace {

/// Sorted intersection of two sorted index lists.
std::vector<uint32_t> Intersect(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(std::min(a.size(), b.size()));
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Resolves one dimension's final index list: union over each selection's
/// values, intersection across selections; full range when unselected.
Status FinalIndexList(const OlapArray& array, size_t d,
                      const query::DimensionQuery& dq,
                      std::vector<uint32_t>* out) {
  const uint32_t size = array.layout().dims()[d];
  if (dq.selections.empty()) {
    out->resize(size);
    for (uint32_t i = 0; i < size; ++i) (*out)[i] = i;
    return Status::OK();
  }
  bool first = true;
  for (const query::Selection& s : dq.selections) {
    std::vector<uint32_t> list;
    for (const query::Literal& lit : s.values) {
      PARADISE_RETURN_IF_ERROR(array.AttrIndexList(
          d, s.attr_col, query::NormalizeLiteral(lit), &list));
    }
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    if (first) {
      *out = std::move(list);
      first = false;
    } else {
      *out = Intersect(*out, list);
    }
  }
  return Status::OK();
}

}  // namespace

Result<query::GroupedResult> ArrayConsolidateWithSelection(
    const OlapArray& array, const query::ConsolidationQuery& q,
    PhaseTimer* timer, ArraySelectStats* stats,
    const ArraySelectOptions& options) {
  if (!q.HasSelection()) {
    return Status::InvalidArgument(
        "ArrayConsolidateWithSelection requires a selection; use "
        "ArrayConsolidate");
  }
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));
  const ChunkLayout& layout = array.layout();
  const size_t n = layout.num_dims();

  // Phase 1: B-tree index lookups and list merging.
  std::vector<std::vector<uint32_t>> lists(n);
  {
    ScopedPhase phase(timer, "index-lookup");
    for (size_t d = 0; d < n; ++d) {
      PARADISE_RETURN_IF_ERROR(FinalIndexList(array, d, q.dims[d], &lists[d]));
      if (lists[d].empty()) {
        // Empty cross-product: nothing qualifies.
        return FlatToGroupedResult(spec, {}, spec.GroupColumnNames(array));
      }
    }
  }

  // Precompute group-code contributions per dimension index so each hit is a
  // few array lookups plus adds (position-based aggregation).
  std::vector<const std::vector<int32_t>*> level_maps(spec.grouped_dims.size());
  for (size_t g = 0; g < spec.grouped_dims.size(); ++g) {
    level_maps[g] =
        &array.i2i(spec.grouped_dims[g]).MapColumn(spec.group_cols[g]);
  }

  std::vector<query::AggState> flat(spec.num_groups);
  {
    ScopedPhase phase(timer, "probe+aggregate");
    // Reused per-chunk state.
    std::vector<uint32_t> slice_begin(n), slice_end(n), pos(n);
    std::vector<uint32_t> local_strides(n);
    for (uint64_t chunk_no = 0; chunk_no < layout.num_chunks(); ++chunk_no) {
      if (array.array(q.measure).ChunkIsEmpty(chunk_no)) continue;
      const CellCoords base = layout.ChunkBase(chunk_no);
      const CellCoords cdims = layout.ChunkDims(chunk_no);

      // §4.2 optimization 1: compute each dimension list's overlap with this
      // chunk's coordinate box; an empty overlap means the chunk holds no
      // cross-product element and need not be read.
      bool overlap = true;
      for (size_t d = 0; d < n; ++d) {
        const auto lo = std::lower_bound(lists[d].begin(), lists[d].end(),
                                         base[d]);
        const auto hi = std::lower_bound(lo, lists[d].end(),
                                         base[d] + cdims[d]);
        slice_begin[d] = static_cast<uint32_t>(lo - lists[d].begin());
        slice_end[d] = static_cast<uint32_t>(hi - lists[d].begin());
        if (lo == hi) overlap = false;
      }
      if (!overlap && options.skip_non_overlapping_chunks) {
        if (stats != nullptr) ++stats->chunks_skipped;
        continue;
      }

      PARADISE_ASSIGN_OR_RETURN(std::string blob,
                                array.array(q.measure).ReadChunkBlob(chunk_no));
      PARADISE_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Make(blob));
      if (stats != nullptr) ++stats->chunks_read;
      if (!overlap) continue;  // ablation path: chunk read, nothing to probe

      // Row-major local strides of this chunk.
      uint32_t s = 1;
      for (size_t i = n; i > 0; --i) {
        local_strides[i - 1] = s;
        s *= cdims[i - 1];
      }

      // §4.2 optimizations 2+3: enumerate cross-product elements in
      // increasing chunk-offset order (row-major odometer over the list
      // slices) and probe the sorted stored chunk with a forward-moving
      // binary search directly on the serialized bytes.
      const bool sparse = view.sparse();
      uint32_t probe_pos = 0;
      for (size_t d = 0; d < n; ++d) pos[d] = slice_begin[d];
      bool done = false;
      while (!done) {
        uint32_t offset = 0;
        for (size_t d = 0; d < n; ++d) {
          offset += (lists[d][pos[d]] - base[d]) * local_strides[d];
        }
        if (stats != nullptr) ++stats->candidates;
        std::optional<int64_t> hit;
        if (sparse) {
          probe_pos = view.SparseLowerBound(offset, probe_pos);
          if (probe_pos < view.num_valid()) {
            const ChunkEntry e = view.SparseEntry(probe_pos);
            if (e.offset == offset) hit = e.value;
          }
        } else {
          hit = view.Get(offset);
        }
        if (hit.has_value()) {
          uint64_t flat_idx = 0;
          for (size_t g = 0; g < spec.grouped_dims.size(); ++g) {
            const size_t gd = spec.grouped_dims[g];
            flat_idx += static_cast<uint64_t>(
                            (*level_maps[g])[lists[gd][pos[gd]]]) *
                        spec.strides[g];
          }
          flat[flat_idx].Add(*hit);
          if (stats != nullptr) ++stats->hits;
        }
        if (sparse && probe_pos >= view.num_valid()) {
          break;  // no later offset can match
        }
        // Advance the odometer (last dimension fastest).
        size_t d = n - 1;
        for (;;) {
          if (++pos[d] < slice_end[d]) break;
          pos[d] = slice_begin[d];
          if (d == 0) {
            done = true;
            break;
          }
          --d;
        }
      }
    }
  }

  {
    ScopedPhase phase(timer, "emit");
    return FlatToGroupedResult(spec, flat, spec.GroupColumnNames(array));
  }
}

}  // namespace paradise
