// Batch-shaped consolidation kernels for the §4.1/§5.5.1 hot loop: decode a
// run of chunk offsets into flat result indexes (one magic-number reciprocal
// division per grouped dimension instead of a hardware div/mod per cell),
// gather the per-dimension flat-index contributions, and scatter the batch
// into the AggState array with consecutive equal groups pre-combined.
//
// Two implementations of the offset-decode step are compiled from the same
// template (decode_inl.h): a portable scalar one and an AVX2 one built in its
// own translation unit with -mavx2 (CMake sets the flag per file, so vector
// code never leaks into baseline objects). Which one runs is decided once at
// startup by CPUID — overridable with PARADISE_DISABLE_SIMD=1 or ForceIsa()
// — and both are bit-identical: the decode is pure integer arithmetic with
// exact floor division (see MagicReciprocal), and the scatter is shared, so
// a forced-scalar run and a dispatched run produce byte-equal GroupedResults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "array/chunk.h"
#include "query/result.h"

namespace paradise {

class OlapArray;
struct GroupSpec;

namespace kernels {

enum class Isa : uint8_t { kScalar = 0, kAvx2 = 1 };

std::string_view IsaName(Isa isa);

/// The decode implementation queries will run: kAvx2 when the build carries
/// the AVX2 translation unit, the CPU reports the feature, and
/// PARADISE_DISABLE_SIMD is unset/0 in the environment; kScalar otherwise.
/// Detection happens once; ForceIsa() overrides it.
Isa ActiveIsa();

/// Test/bench hook: pins ActiveIsa() to `isa` (nullopt restores detection).
/// Forcing kAvx2 on a CPU without AVX2 is undefined — callers check
/// ActiveIsa() under detection first.
void ForceIsa(std::optional<Isa> isa);

/// ceil(2^64 / d) for d >= 2. For any n < 2^32,
///   floor(n / d) == (n * MagicReciprocal(d)) >> 64
/// exactly: writing m = floor(2^64/d) + 1 = (2^64 + e) / d with 0 < e <= d,
/// the error term n*e/d < 2^32 never reaches the bit above the shift. This
/// is the constant-divisor strength reduction compilers do, hoisted to run
/// time because the divisors (chunk strides/extents) are per-chunk data.
inline uint64_t MagicReciprocal(uint32_t d) { return ~uint64_t{0} / d + 1; }

/// floor(n / d) via the reciprocal; `magic` must be MagicReciprocal(d).
inline uint32_t MagicDivide(uint32_t n, uint64_t magic) {
  return static_cast<uint32_t>(
      (static_cast<unsigned __int128>(n) * magic) >> 64);
}

/// Decode constants for one grouped dimension: the local coordinate of a
/// chunk offset is (offset / stride) % dim == offset/stride - (offset/span)*dim
/// with span = stride*dim, so one offset costs two reciprocal multiplies, one
/// multiply-subtract, and one contribution-table gather.
struct GroupDecode {
  uint32_t stride = 1;       // row-major local stride of the dimension
  uint32_t dim = 1;          // chunk extent of the dimension
  uint64_t magic_stride = 0; // MagicReciprocal(stride); unused when stride==1
  uint64_t magic_span = 0;   // MagicReciprocal(stride*dim)
  const uint64_t* contribution = nullptr;  // [dim] flat-index contributions
};

/// Per-chunk decode tables — the reusable form of the old BuildChunkTables
/// in consolidate.cc/parallel.cc. One instance lives per query (serial) or
/// per worker (parallel) and is re-Built per chunk without reallocating: the
/// contribution vectors keep their capacity across chunks.
class KernelTables {
 public:
  /// Rebuilds the tables for `chunk_no`. contribution[g][local] =
  /// i2i(level code at chunk base + local) * result stride (§5.5.1).
  void Build(const OlapArray& array, const GroupSpec& spec, uint64_t chunk_no);

  /// Test/bench hook: builds tables for a free-standing chunk geometry.
  /// `chunk_dims` are the chunk's per-dimension extents (row-major);
  /// `grouped` maps dimension index -> that dimension's contribution table
  /// (size == extent). No OlapArray needed.
  void BuildRaw(const std::vector<uint32_t>& chunk_dims,
                const std::vector<std::pair<size_t, std::vector<uint64_t>>>&
                    grouped);

  /// Sum of contributions of grouped dimensions whose chunk extent is 1
  /// (their local coordinate is always 0) — pre-added so the per-cell loop
  /// only touches dimensions that actually vary within the chunk.
  uint64_t flat_base() const { return flat_base_; }
  const std::vector<GroupDecode>& groups() const { return groups_; }

 private:
  uint64_t flat_base_ = 0;
  std::vector<GroupDecode> groups_;
  // Backing store for GroupDecode::contribution, reused across Build calls.
  std::vector<std::vector<uint64_t>> contribution_;
  std::vector<uint32_t> stride_scratch_;
};

/// Decodes `n` chunk offsets into flat result indexes. One symbol per ISA
/// translation unit; ActiveDecodeBatch() picks at run time.
using DecodeBatchFn = void (*)(const uint32_t* offsets, size_t n,
                               const KernelTables& tables, uint64_t* flat_idx);

void DecodeBatchScalar(const uint32_t* offsets, size_t n,
                       const KernelTables& tables, uint64_t* flat_idx);
void DecodeBatchAvx2(const uint32_t* offsets, size_t n,
                     const KernelTables& tables, uint64_t* flat_idx);

DecodeBatchFn ActiveDecodeBatch();

/// Aggregates a position range of `view` into `flat` in batches. For sparse
/// chunks the range is [begin, end) over entry indexes; for dense chunks it
/// is [begin, end) over chunk offsets (invalid cells are skipped via the
/// validity bitmap). Morsels are exactly such ranges, so the whole-chunk
/// path below and every morsel schedule aggregate identical cell sequences.
/// Returns the number of valid cells aggregated.
uint64_t AggregateRange(const ChunkView& view, uint32_t begin, uint32_t end,
                        const KernelTables& tables,
                        query::AggState* flat);

/// Whole-chunk convenience: AggregateRange over every position.
uint64_t AggregateView(const ChunkView& view, const KernelTables& tables,
                       query::AggState* flat);

/// The position domain AggregateRange ranges over: num_valid() for sparse
/// chunks, capacity() for dense ones. Morsel splitting divides [0, this).
inline uint32_t PositionCount(const ChunkView& view) {
  return view.sparse() ? view.num_valid() : view.capacity();
}

}  // namespace kernels
}  // namespace paradise
