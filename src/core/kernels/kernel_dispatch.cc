// Runtime ISA selection for the decode kernels. Detection runs once (first
// query): the AVX2 unit must have been built with real intrinsics
// (PARADISE_KERNEL_HAVE_AVX2, set by CMake alongside the per-file -mavx2),
// the CPU must report the feature, and the operator must not have forced the
// portable path with PARADISE_DISABLE_SIMD=1. Tests and benches pin the
// choice with ForceIsa() to compare the paths on one machine.
#include <atomic>
#include <cstdlib>

#include "core/kernels/consolidate_kernel.h"

namespace paradise::kernels {

namespace {

// -1 = not forced; otherwise the forced Isa value.
std::atomic<int> g_forced_isa{-1};

bool SimdDisabledByEnv() {
  const char* v = std::getenv("PARADISE_DISABLE_SIMD");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

Isa DetectIsa() {
  if (SimdDisabledByEnv()) return Isa::kScalar;
#if defined(PARADISE_KERNEL_HAVE_AVX2) && \
    (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
#endif
  return Isa::kScalar;
}

}  // namespace

std::string_view IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Isa ActiveIsa() {
  const int forced = g_forced_isa.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Isa>(forced);
  static const Isa detected = DetectIsa();
  return detected;
}

void ForceIsa(std::optional<Isa> isa) {
  g_forced_isa.store(isa.has_value() ? static_cast<int>(*isa) : -1,
                     std::memory_order_relaxed);
}

DecodeBatchFn ActiveDecodeBatch() {
  return ActiveIsa() == Isa::kAvx2 ? DecodeBatchAvx2 : DecodeBatchScalar;
}

}  // namespace paradise::kernels
