// Portable decode kernel — the baseline every other ISA must match
// bit-for-bit. Compiled with the project's default flags only.
#include "core/kernels/consolidate_kernel.h"
#include "core/kernels/decode_inl.h"

namespace paradise::kernels {

void DecodeBatchScalar(const uint32_t* offsets, size_t n,
                       const KernelTables& tables, uint64_t* flat_idx) {
  DecodeBatchPortable(offsets, n, tables, flat_idx);
}

}  // namespace paradise::kernels
