// AVX2 decode kernel. This is the only translation unit compiled with
// -mavx2 (set per-file in src/CMakeLists.txt); kernel_dispatch.cc selects it
// at run time only when the build defined PARADISE_KERNEL_HAVE_AVX2 *and*
// CPUID reports the feature, so no AVX2 instruction can execute elsewhere.
//
// Group-major like the portable template: for each grouped dimension, sweep
// the whole offset batch with that group's constants held in registers.
// Eight offsets per pass (two 4-lane blocks, so two independent VPGATHERQQ
// are in flight); each u32 offset is zero-extended into a u64 lane, and the
// 64-bit high-multiply against the magic reciprocal decomposes as
//   mulhi64(n, m) = (n*hi(m) + ((n*lo(m)) >> 32)) >> 32     (n < 2^32)
// — two VPMULUDQ, two shifts, one add per division. The arithmetic is the
// exact expression decode_inl.h evaluates, so results are bit-identical to
// the scalar kernel.
#include "core/kernels/consolidate_kernel.h"
#include "core/kernels/decode_inl.h"

#if defined(__AVX2__)
#include <immintrin.h>

namespace paradise::kernels {

namespace {

/// mulhi64(n, magic) on 4 u64 lanes that each hold a value < 2^32, with the
/// magic's halves pre-splatted.
inline __m256i MulHi4(__m256i n, __m256i magic_hi, __m256i magic_lo) {
  const __m256i nhi = _mm256_mul_epu32(n, magic_hi);
  const __m256i nlo = _mm256_srli_epi64(_mm256_mul_epu32(n, magic_lo), 32);
  return _mm256_srli_epi64(_mm256_add_epi64(nhi, nlo), 32);
}

inline __m256i Load4(const uint32_t* offsets) {
  return _mm256_cvtepu32_epi64(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(offsets)));
}

}  // namespace

void DecodeBatchAvx2(const uint32_t* offsets, size_t n,
                     const KernelTables& tables, uint64_t* flat_idx) {
  const size_t n4 = n & ~size_t{3};
  const __m256i base =
      _mm256_set1_epi64x(static_cast<long long>(tables.flat_base()));
  for (size_t i = 0; i < n4; i += 4) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(flat_idx + i), base);
  }

  for (const GroupDecode& g : tables.groups()) {
    const auto* table = reinterpret_cast<const long long*>(g.contribution);
    const bool unit_stride = g.stride == 1;
    const __m256i dim = _mm256_set1_epi64x(static_cast<long long>(g.dim));
    const __m256i span_hi =
        _mm256_set1_epi64x(static_cast<long long>(g.magic_span >> 32));
    const __m256i span_lo = _mm256_set1_epi64x(
        static_cast<long long>(g.magic_span & 0xffffffffu));
    const __m256i stride_hi =
        _mm256_set1_epi64x(static_cast<long long>(g.magic_stride >> 32));
    const __m256i stride_lo = _mm256_set1_epi64x(
        static_cast<long long>(g.magic_stride & 0xffffffffu));

    // local = (off / stride) - (off / span) * dim, span = stride * dim.
    const auto local4 = [&](__m256i off) {
      const __m256i q_stride =
          unit_stride ? off : MulHi4(off, stride_hi, stride_lo);
      const __m256i q_span = MulHi4(off, span_hi, span_lo);
      return _mm256_sub_epi64(q_stride, _mm256_mul_epu32(q_span, dim));
    };

    size_t i = 0;
    for (; i + 8 <= n4; i += 8) {
      const __m256i c0 =
          _mm256_i64gather_epi64(table, local4(Load4(offsets + i)), 8);
      const __m256i c1 =
          _mm256_i64gather_epi64(table, local4(Load4(offsets + i + 4)), 8);
      auto* out0 = reinterpret_cast<__m256i*>(flat_idx + i);
      auto* out1 = reinterpret_cast<__m256i*>(flat_idx + i + 4);
      _mm256_storeu_si256(out0,
                          _mm256_add_epi64(_mm256_loadu_si256(out0), c0));
      _mm256_storeu_si256(out1,
                          _mm256_add_epi64(_mm256_loadu_si256(out1), c1));
    }
    for (; i + 4 <= n4; i += 4) {
      const __m256i c =
          _mm256_i64gather_epi64(table, local4(Load4(offsets + i)), 8);
      auto* out = reinterpret_cast<__m256i*>(flat_idx + i);
      _mm256_storeu_si256(out, _mm256_add_epi64(_mm256_loadu_si256(out), c));
    }
  }

  if (n4 < n) {
    DecodeBatchPortable(offsets + n4, n - n4, tables, flat_idx + n4);
  }
}

}  // namespace paradise::kernels

#else  // !defined(__AVX2__)

namespace paradise::kernels {

// Non-x86 / non-AVX2 build: the symbol must exist for the dispatch table,
// but ActiveIsa() never selects it (PARADISE_KERNEL_HAVE_AVX2 is unset).
void DecodeBatchAvx2(const uint32_t* offsets, size_t n,
                     const KernelTables& tables, uint64_t* flat_idx) {
  DecodeBatchPortable(offsets, n, tables, flat_idx);
}

}  // namespace paradise::kernels

#endif  // defined(__AVX2__)
