// Table building and the batch drivers shared by every ISA: extract a batch
// of (offset, value) pairs straight off the serialized chunk bytes, decode
// the offsets with the dispatched kernel, and scatter into AggState with
// consecutive equal flat indexes pre-combined. Cells arrive in offset order
// within a chunk, so when many cells of a batch fall into the same group
// (the common case — the innermost grouped dimension spans whole runs) the
// scatter touches the AggState once per run instead of once per cell.
#include "core/kernels/consolidate_kernel.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/coding.h"
#include "core/aggregate.h"
#include "core/olap_array.h"

namespace paradise::kernels {

namespace {

// Cells per decode batch: large enough to amortize the dispatch-function
// call and keep the vector loop busy, small enough that the three scratch
// arrays (~5 KiB) stay in L1.
constexpr size_t kBatch = 256;

GroupDecode MakeGroupDecode(uint32_t stride, uint32_t dim,
                            const uint64_t* contribution) {
  GroupDecode g;
  g.stride = stride;
  g.dim = dim;
  g.magic_stride = stride >= 2 ? MagicReciprocal(stride) : 0;
  // span = stride * dim divides the chunk capacity, so it fits in 32 bits.
  g.magic_span = MagicReciprocal(
      static_cast<uint32_t>(static_cast<uint64_t>(stride) * dim));
  g.contribution = contribution;
  return g;
}

/// Merges a batch into `flat`, combining runs of equal flat indexes into one
/// AggState::Merge. Equivalent to calling flat[idx].Add(value) per cell:
/// int64 sum and count are associative, min/max commute.
void ScatterBatch(const uint64_t* flat_idx, const int64_t* values, size_t n,
                  query::AggState* flat) {
  size_t i = 0;
  while (i < n) {
    const uint64_t idx = flat_idx[i];
    query::AggState run;
    run.Add(values[i]);
    size_t j = i + 1;
    for (; j < n && flat_idx[j] == idx; ++j) run.Add(values[j]);
    flat[idx].Merge(run);
    i = j;
  }
}

/// One 64-cell window of the dense validity bitmap, starting at cell
/// `word_base` (a multiple of 64). Short-loads near the end of the bitmap.
uint64_t LoadBitmapWord(const char* bitmap, uint32_t word_base,
                        uint32_t capacity) {
  const size_t byte_off = word_base / 8;
  const size_t bitmap_bytes = (static_cast<size_t>(capacity) + 7) / 8;
  uint64_t word = 0;
  std::memcpy(&word, bitmap + byte_off,
              std::min<size_t>(8, bitmap_bytes - byte_off));
  return word;
}

}  // namespace

void KernelTables::Build(const OlapArray& array, const GroupSpec& spec,
                         uint64_t chunk_no) {
  const ChunkLayout& layout = array.layout();
  const CellCoords base = layout.ChunkBase(chunk_no);
  const CellCoords cdims = layout.ChunkDims(chunk_no);
  const size_t n = layout.num_dims();

  // Row-major strides of the chunk's local coordinate space.
  stride_scratch_.resize(n);
  uint32_t s = 1;
  for (size_t i = n; i > 0; --i) {
    stride_scratch_[i - 1] = s;
    s *= cdims[i - 1];
  }

  const size_t num_groups = spec.grouped_dims.size();
  if (contribution_.size() < num_groups) contribution_.resize(num_groups);
  groups_.clear();
  flat_base_ = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    const size_t d = spec.grouped_dims[g];
    const IndexToIndexArray& i2i = array.i2i(d);
    std::vector<uint64_t>& contrib = contribution_[g];
    contrib.resize(cdims[d]);
    for (uint32_t local = 0; local < cdims[d]; ++local) {
      contrib[local] =
          static_cast<uint64_t>(
              i2i.Map(spec.group_cols[g], base[d] + local)) *
          spec.strides[g];
    }
    if (cdims[d] == 1) {
      flat_base_ += contrib[0];
    } else {
      groups_.push_back(
          MakeGroupDecode(stride_scratch_[d], cdims[d], contrib.data()));
    }
  }
}

void KernelTables::BuildRaw(
    const std::vector<uint32_t>& chunk_dims,
    const std::vector<std::pair<size_t, std::vector<uint64_t>>>& grouped) {
  const size_t n = chunk_dims.size();
  stride_scratch_.resize(n);
  uint32_t s = 1;
  for (size_t i = n; i > 0; --i) {
    stride_scratch_[i - 1] = s;
    s *= chunk_dims[i - 1];
  }
  if (contribution_.size() < grouped.size()) contribution_.resize(grouped.size());
  groups_.clear();
  flat_base_ = 0;
  for (size_t g = 0; g < grouped.size(); ++g) {
    const size_t d = grouped[g].first;
    contribution_[g] = grouped[g].second;
    if (chunk_dims[d] == 1) {
      flat_base_ += contribution_[g][0];
    } else {
      groups_.push_back(MakeGroupDecode(stride_scratch_[d], chunk_dims[d],
                                        contribution_[g].data()));
    }
  }
}

uint64_t AggregateRange(const ChunkView& view, uint32_t begin, uint32_t end,
                        const KernelTables& tables, query::AggState* flat) {
  const DecodeBatchFn decode = ActiveDecodeBatch();
  uint32_t offsets[kBatch];
  int64_t values[kBatch];
  uint64_t flat_idx[kBatch];
  uint64_t cells = 0;

  if (view.encoding() == ChunkEncoding::kSparse) {
    const char* p = view.SparseEntriesData() + static_cast<size_t>(begin) * 12;
    for (uint32_t i = begin; i < end;) {
      const size_t n = std::min<size_t>(kBatch, end - i);
      for (size_t k = 0; k < n; ++k, p += 12) {
        offsets[k] = DecodeFixed32(p);
        values[k] = static_cast<int64_t>(DecodeFixed64(p + 4));
      }
      decode(offsets, n, tables, flat_idx);
      ScatterBatch(flat_idx, values, n, flat);
      i += static_cast<uint32_t>(n);
      cells += n;
    }
    return cells;
  }

  if (view.sparse()) {
    // Packed codecs (diff-sequence / bit-packed): unpack one block at a
    // time into the batch scratch (kPackedChunkBlock <= kBatch), then run
    // the same dispatched decode + scatter. A morsel boundary mid-block
    // decodes the whole block and aggregates only its [lo, hi) slice, so
    // every schedule still aggregates identical cell sequences.
    static_assert(kPackedChunkBlock <= kBatch);
    for (uint32_t i = begin; i < end;) {
      const uint32_t b = i / kPackedChunkBlock;
      const uint32_t block_start = b * kPackedChunkBlock;
      const uint32_t block_n = view.DecodeBlock(b, offsets, values);
      const uint32_t lo = i - block_start;
      const uint32_t hi =
          std::min<uint32_t>(block_n, end - block_start);
      const size_t n = hi - lo;
      decode(offsets + lo, n, tables, flat_idx);
      ScatterBatch(flat_idx, values + lo, n, flat);
      cells += n;
      i = block_start + hi;
    }
    return cells;
  }

  // Dense: scan the validity bitmap one 64-cell word at a time and pack the
  // set cells' offsets/values into the batch.
  const char* bitmap = view.DenseBitmapData();
  const char* vals = view.DenseValuesData();
  size_t n = 0;
  // 64-bit cursor: word_base + 64 may not fit in 32 bits for the last word
  // of a capacity near 2^32.
  for (uint64_t off = begin; off < end;) {
    const uint32_t word_base = static_cast<uint32_t>(off) & ~uint32_t{63};
    uint64_t word = LoadBitmapWord(bitmap, word_base, view.capacity());
    word &= ~uint64_t{0} << (off - word_base);
    if (end - word_base < 64) {
      word &= (uint64_t{1} << (end - word_base)) - 1;
    }
    while (word != 0) {
      const uint32_t o = word_base + static_cast<uint32_t>(std::countr_zero(word));
      word &= word - 1;
      offsets[n] = o;
      values[n] =
          static_cast<int64_t>(DecodeFixed64(vals + static_cast<size_t>(o) * 8));
      if (++n == kBatch) {
        decode(offsets, n, tables, flat_idx);
        ScatterBatch(flat_idx, values, n, flat);
        cells += n;
        n = 0;
      }
    }
    off = static_cast<uint64_t>(word_base) + 64;
  }
  if (n != 0) {
    decode(offsets, n, tables, flat_idx);
    ScatterBatch(flat_idx, values, n, flat);
    cells += n;
  }
  return cells;
}

uint64_t AggregateView(const ChunkView& view, const KernelTables& tables,
                       query::AggState* flat) {
  return AggregateRange(view, 0, PositionCount(view), tables, flat);
}

}  // namespace paradise::kernels
