// The portable offset-decode template, included (with internal linkage) by
// every ISA translation unit: kernel_scalar.cc uses it as the whole decode,
// kernel_avx2.cc for the < 4-lane tail. Keeping it `static` per TU means the
// copy inside the AVX2 unit may legally pick up AVX2 codegen without that
// leaking into the baseline objects — each TU owns its own instantiation.
//
// Must stay branch-free per cell in a way that cannot depend on the ISA:
// only integer multiplies, shifts, adds and table gathers, so the scalar and
// vector paths agree bit-for-bit on every input.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/kernels/consolidate_kernel.h"

namespace paradise::kernels {
namespace {

inline void DecodeBatchPortable(const uint32_t* offsets, size_t n,
                                const KernelTables& tables,
                                uint64_t* flat_idx) {
  const uint64_t base = tables.flat_base();
  for (size_t i = 0; i < n; ++i) flat_idx[i] = base;
  // Group-major: the per-group constants stay in registers across the batch.
  for (const GroupDecode& g : tables.groups()) {
    const uint64_t* const contribution = g.contribution;
    if (g.stride == 1) {
      for (size_t i = 0; i < n; ++i) {
        const uint32_t off = offsets[i];
        const uint32_t local = off - MagicDivide(off, g.magic_span) * g.dim;
        flat_idx[i] += contribution[local];
      }
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      const uint32_t off = offsets[i];
      const uint32_t local = MagicDivide(off, g.magic_stride) -
                             MagicDivide(off, g.magic_span) * g.dim;
      flat_idx[i] += contribution[local];
    }
  }
}

}  // namespace
}  // namespace paradise::kernels
