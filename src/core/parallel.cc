#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "array/chunk_prefetcher.h"
#include "core/aggregate.h"
#include "storage/io_pool.h"
#include "storage/storage_manager.h"

namespace paradise {

namespace {

/// Aggregates one chunk blob into `flat` (the per-worker result array).
Status AggregateChunk(const OlapArray& array, const GroupSpec& spec,
                      uint64_t chunk_no, const std::string& blob,
                      std::vector<query::AggState>* flat) {
  PARADISE_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Make(blob));
  const ChunkLayout& layout = array.layout();
  const CellCoords base = layout.ChunkBase(chunk_no);
  const CellCoords cdims = layout.ChunkDims(chunk_no);
  const size_t n = layout.num_dims();

  std::vector<uint32_t> strides(n);
  uint32_t s = 1;
  for (size_t i = n; i > 0; --i) {
    strides[i - 1] = s;
    s *= cdims[i - 1];
  }
  const size_t groups = spec.grouped_dims.size();
  // Per-dimension flat-index contribution tables (see consolidate.cc).
  std::vector<std::vector<uint64_t>> contribution(groups);
  std::vector<uint32_t> chunk_stride(groups), chunk_dim(groups);
  for (size_t g = 0; g < groups; ++g) {
    const size_t d = spec.grouped_dims[g];
    const IndexToIndexArray& i2i = array.i2i(d);
    chunk_stride[g] = strides[d];
    chunk_dim[g] = cdims[d];
    contribution[g].resize(cdims[d]);
    for (uint32_t local = 0; local < cdims[d]; ++local) {
      contribution[g][local] =
          static_cast<uint64_t>(i2i.Map(spec.group_cols[g], base[d] + local)) *
          spec.strides[g];
    }
  }
  view.ForEach([&](uint32_t offset, int64_t value) {
    uint64_t flat_idx = 0;
    for (size_t g = 0; g < groups; ++g) {
      flat_idx += contribution[g][(offset / chunk_stride[g]) % chunk_dim[g]];
    }
    (*flat)[flat_idx].Add(value);
  });
  return Status::OK();
}

/// Read-ahead wiring shared by both engines: depth and pool come from the
/// array's storage manager.
ChunkReadAhead MakeCursor(const OlapArray& array, size_t measure,
                          std::vector<uint64_t> chunks) {
  StorageManager* storage = array.storage();
  return ChunkReadAhead(&array.array(measure), std::move(chunks),
                        storage->options().prefetch_depth, storage->io_pool(),
                        storage->pool());
}

/// Runs `num_threads` workers over `fn` (worker index as argument) and
/// returns the first non-OK status any worker produced.
template <typename Fn>
Status RunWorkers(size_t num_threads, Fn&& fn) {
  std::vector<Status> worker_status(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    workers.emplace_back([&, w] { worker_status[w] = fn(w); });
  }
  for (std::thread& t : workers) t.join();
  for (Status& st : worker_status) PARADISE_RETURN_IF_ERROR(st);
  return Status::OK();
}

/// Merges per-worker flat result arrays into one (order-independent).
std::vector<query::AggState> MergePartials(
    uint64_t num_groups, std::vector<std::vector<query::AggState>>* partials) {
  std::vector<query::AggState> flat(num_groups);
  for (const auto& partial : *partials) {
    for (uint64_t i = 0; i < num_groups; ++i) {
      if (partial[i].count > 0) flat[i].Merge(partial[i]);
    }
  }
  return flat;
}

}  // namespace

Result<query::GroupedResult> ParallelArrayConsolidate(
    const OlapArray& array, const query::ConsolidationQuery& q,
    size_t num_threads, PhaseTimer* timer, ParallelConsolidateStats* stats,
    const CancellationToken* cancel) {
  if (q.HasSelection()) {
    return Status::InvalidArgument(
        "ParallelArrayConsolidate handles no-selection queries; use "
        "ParallelArrayConsolidateWithSelection");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));

  // The chunk list is cheap to enumerate (directory lookups only) and fixes
  // the claim order for the read-ahead window.
  std::vector<uint64_t> chunks;
  const uint64_t num_chunks = array.layout().num_chunks();
  for (uint64_t c = 0; c < num_chunks; ++c) {
    if (!array.array(q.measure).ChunkIsEmpty(c)) chunks.push_back(c);
  }

  std::vector<std::vector<query::AggState>> partials(
      num_threads, std::vector<query::AggState>(spec.num_groups));
  std::atomic<uint64_t> chunks_read{0};
  {
    ScopedPhase phase(timer, "scan+aggregate");
    ChunkReadAhead cursor = MakeCursor(array, q.measure, std::move(chunks));
    PARADISE_RETURN_IF_ERROR(RunWorkers(num_threads, [&](size_t w) -> Status {
      uint64_t chunk_no = 0;
      std::string blob;
      for (;;) {
        if (cancel != nullptr) {
          PARADISE_RETURN_IF_ERROR(cancel->Check());
        }
        PARADISE_ASSIGN_OR_RETURN(bool more, cursor.Next(&chunk_no, &blob));
        if (!more) return Status::OK();
        chunks_read.fetch_add(1, std::memory_order_relaxed);
        PARADISE_RETURN_IF_ERROR(
            AggregateChunk(array, spec, chunk_no, blob, &partials[w]));
      }
    }));
  }

  std::vector<query::AggState> flat;
  {
    ScopedPhase phase(timer, "merge");
    flat = MergePartials(spec.num_groups, &partials);
  }
  if (stats != nullptr) {
    stats->chunks_read = chunks_read.load(std::memory_order_relaxed);
    stats->threads_used = num_threads;
  }
  ScopedPhase phase(timer, "emit");
  return FlatToGroupedResult(spec, flat, spec.GroupColumnNames(array));
}

Result<query::GroupedResult> ParallelArrayConsolidateWithSelection(
    const OlapArray& array, const query::ConsolidationQuery& q,
    size_t num_threads, PhaseTimer* timer, ArraySelectStats* select_stats,
    ParallelConsolidateStats* stats, const ArraySelectOptions& options) {
  using select_detail::MakeSelectionPlan;
  using select_detail::PlanSelectionChunks;
  using select_detail::ProbeSelectionChunk;
  using select_detail::SelectionChunkWork;
  using select_detail::SelectionPlan;

  if (!q.HasSelection()) {
    return Status::InvalidArgument(
        "ParallelArrayConsolidateWithSelection requires a selection; use "
        "ParallelArrayConsolidate");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));

  // Phase 1 stays serial: B-tree probes and list merges are a tiny fraction
  // of query time and share the (read-only) index structures.
  SelectionPlan plan;
  {
    ScopedPhase phase(timer, "index-lookup");
    PARADISE_ASSIGN_OR_RETURN(plan, MakeSelectionPlan(array, q, spec));
    if (plan.empty) {
      if (stats != nullptr) stats->threads_used = num_threads;
      return FlatToGroupedResult(spec, {}, spec.GroupColumnNames(array));
    }
  }

  // The overlap scan is pure CPU over the chunk directory; running it
  // serially fixes the candidate order (chunk-number = physical order, what
  // read-ahead wants) before any chunk I/O happens.
  const std::vector<SelectionChunkWork> work_items =
      PlanSelectionChunks(array, q, plan, options, select_stats);

  std::vector<std::vector<query::AggState>> partials(
      num_threads, std::vector<query::AggState>(spec.num_groups));
  std::vector<ArraySelectStats> worker_stats(num_threads);
  {
    ScopedPhase phase(timer, "probe+aggregate");
    std::vector<uint64_t> chunks;
    chunks.reserve(work_items.size());
    for (const SelectionChunkWork& w : work_items) chunks.push_back(w.chunk_no);
    ChunkReadAhead cursor = MakeCursor(array, q.measure, std::move(chunks));
    PARADISE_RETURN_IF_ERROR(RunWorkers(num_threads, [&](size_t w) -> Status {
      uint64_t chunk_no = 0;
      std::string blob;
      for (;;) {
        if (options.cancel != nullptr) {
          PARADISE_RETURN_IF_ERROR(options.cancel->Check());
        }
        PARADISE_ASSIGN_OR_RETURN(bool more, cursor.Next(&chunk_no, &blob));
        if (!more) return Status::OK();
        // work_items is sorted by chunk_no (PlanSelectionChunks scans in
        // chunk order), so the claimed chunk's slices are found by binary
        // search.
        const auto it = std::lower_bound(
            work_items.begin(), work_items.end(), chunk_no,
            [](const SelectionChunkWork& lhs, uint64_t c) {
              return lhs.chunk_no < c;
            });
        PARADISE_RETURN_IF_ERROR(ProbeSelectionChunk(
            array, spec, plan, *it, blob, &partials[w],
            select_stats != nullptr ? &worker_stats[w] : nullptr));
      }
    }));
  }

  std::vector<query::AggState> flat;
  {
    ScopedPhase phase(timer, "merge");
    flat = MergePartials(spec.num_groups, &partials);
  }
  if (select_stats != nullptr) {
    for (const ArraySelectStats& ws : worker_stats) {
      select_stats->chunks_read += ws.chunks_read;
      select_stats->candidates += ws.candidates;
      select_stats->hits += ws.hits;
    }
  }
  if (stats != nullptr) {
    stats->threads_used = num_threads;
    if (select_stats != nullptr) stats->chunks_read = select_stats->chunks_read;
  }
  ScopedPhase phase(timer, "emit");
  return FlatToGroupedResult(spec, flat, spec.GroupColumnNames(array));
}

}  // namespace paradise
