#include "core/parallel.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include "core/aggregate.h"

namespace paradise {

namespace {

/// Bounded single-producer multi-consumer queue of chunk work items.
class WorkQueue {
 public:
  explicit WorkQueue(size_t capacity) : capacity_(capacity) {}

  void Push(uint64_t chunk_no, std::string blob) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_; });
    items_.emplace_back(chunk_no, std::move(blob));
    not_empty_.notify_one();
  }

  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
  }

  bool Pop(uint64_t* chunk_no, std::string* blob) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *chunk_no = items_.front().first;
    *blob = std::move(items_.front().second);
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::pair<uint64_t, std::string>> items_;
  bool closed_ = false;
};

/// Aggregates one chunk blob into `flat` (the per-worker result array).
Status AggregateChunk(const OlapArray& array, const GroupSpec& spec,
                      uint64_t chunk_no, const std::string& blob,
                      std::vector<query::AggState>* flat) {
  PARADISE_ASSIGN_OR_RETURN(ChunkView view, ChunkView::Make(blob));
  const ChunkLayout& layout = array.layout();
  const CellCoords base = layout.ChunkBase(chunk_no);
  const CellCoords cdims = layout.ChunkDims(chunk_no);
  const size_t n = layout.num_dims();

  std::vector<uint32_t> strides(n);
  uint32_t s = 1;
  for (size_t i = n; i > 0; --i) {
    strides[i - 1] = s;
    s *= cdims[i - 1];
  }
  const size_t groups = spec.grouped_dims.size();
  // Per-dimension flat-index contribution tables (see consolidate.cc).
  std::vector<std::vector<uint64_t>> contribution(groups);
  std::vector<uint32_t> chunk_stride(groups), chunk_dim(groups);
  for (size_t g = 0; g < groups; ++g) {
    const size_t d = spec.grouped_dims[g];
    const IndexToIndexArray& i2i = array.i2i(d);
    chunk_stride[g] = strides[d];
    chunk_dim[g] = cdims[d];
    contribution[g].resize(cdims[d]);
    for (uint32_t local = 0; local < cdims[d]; ++local) {
      contribution[g][local] =
          static_cast<uint64_t>(i2i.Map(spec.group_cols[g], base[d] + local)) *
          spec.strides[g];
    }
  }
  view.ForEach([&](uint32_t offset, int64_t value) {
    uint64_t flat_idx = 0;
    for (size_t g = 0; g < groups; ++g) {
      flat_idx += contribution[g][(offset / chunk_stride[g]) % chunk_dim[g]];
    }
    (*flat)[flat_idx].Add(value);
  });
  return Status::OK();
}

}  // namespace

Result<query::GroupedResult> ParallelArrayConsolidate(
    const OlapArray& array, const query::ConsolidationQuery& q,
    size_t num_threads, PhaseTimer* timer, ParallelConsolidateStats* stats) {
  if (q.HasSelection()) {
    return Status::InvalidArgument(
        "ParallelArrayConsolidate handles no-selection queries");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));

  WorkQueue queue(/*capacity=*/2 * num_threads);
  std::vector<std::vector<query::AggState>> partials(
      num_threads, std::vector<query::AggState>(spec.num_groups));
  std::vector<Status> worker_status(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    workers.emplace_back([&, w] {
      uint64_t chunk_no = 0;
      std::string blob;
      while (queue.Pop(&chunk_no, &blob)) {
        Status st = AggregateChunk(array, spec, chunk_no, blob, &partials[w]);
        if (!st.ok()) {
          worker_status[w] = std::move(st);
          return;  // drain stops; coordinator sees the error after join
        }
      }
    });
  }

  Status scan_status;
  uint64_t chunks_read = 0;
  {
    ScopedPhase phase(timer, "scan+aggregate");
    const uint64_t num_chunks = array.layout().num_chunks();
    for (uint64_t c = 0; c < num_chunks; ++c) {
      if (array.array(q.measure).ChunkIsEmpty(c)) continue;
      Result<std::string> blob = array.array(q.measure).ReadChunkBlob(c);
      if (!blob.ok()) {
        scan_status = blob.status();
        break;
      }
      queue.Push(c, std::move(blob).value());
      ++chunks_read;
    }
    queue.Close();
    for (std::thread& t : workers) t.join();
  }
  PARADISE_RETURN_IF_ERROR(scan_status);
  for (const Status& st : worker_status) PARADISE_RETURN_IF_ERROR(st);

  std::vector<query::AggState> flat(spec.num_groups);
  {
    ScopedPhase phase(timer, "merge");
    for (const auto& partial : partials) {
      for (uint64_t i = 0; i < spec.num_groups; ++i) {
        if (partial[i].count > 0) flat[i].Merge(partial[i]);
      }
    }
  }
  if (stats != nullptr) {
    stats->chunks_read = chunks_read;
    stats->threads_used = num_threads;
  }
  ScopedPhase phase(timer, "emit");
  return FlatToGroupedResult(spec, flat, spec.GroupColumnNames(array));
}

}  // namespace paradise
