#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "array/chunk_prefetcher.h"
#include "common/metrics.h"
#include "core/aggregate.h"
#include "core/kernels/consolidate_kernel.h"
#include "core/morsel.h"
#include "storage/io_pool.h"
#include "storage/storage_manager.h"

namespace paradise {

namespace {

/// Read-ahead wiring shared by both engines: depth and pool come from the
/// array's storage manager.
ChunkReadAhead MakeCursor(const OlapArray& array, size_t measure,
                          std::vector<uint64_t> chunks) {
  StorageManager* storage = array.storage();
  return ChunkReadAhead(&array.array(measure), std::move(chunks),
                        storage->options().prefetch_depth, storage->io_pool(),
                        storage->pool());
}

/// Runs `num_threads` workers over `fn` (worker index as argument) and
/// returns the first non-OK status any worker produced.
template <typename Fn>
Status RunWorkers(size_t num_threads, Fn&& fn) {
  std::vector<Status> worker_status(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    workers.emplace_back([&, w] { worker_status[w] = fn(w); });
  }
  for (std::thread& t : workers) t.join();
  for (Status& st : worker_status) PARADISE_RETURN_IF_ERROR(st);
  return Status::OK();
}

/// Merges per-worker flat result arrays into one (order-independent).
std::vector<query::AggState> MergePartials(
    uint64_t num_groups, std::vector<std::vector<query::AggState>>* partials) {
  std::vector<query::AggState> flat(num_groups);
  for (const auto& partial : *partials) {
    for (uint64_t i = 0; i < num_groups; ++i) {
      if (partial[i].count > 0) flat[i].Merge(partial[i]);
    }
  }
  return flat;
}

/// Folds a pool's scheduling counters into the query stats and (when the
/// storage manager records metrics) the global registry.
void RecordMorselStats(const OlapArray& array, const MorselPoolStats& pstats,
                       ParallelConsolidateStats* stats) {
  if (stats != nullptr) {
    stats->morsels = pstats.morsels;
    stats->morsel_splits = pstats.splits;
    stats->morsel_steals = pstats.steals;
  }
  if (array.storage()->options().metrics_enabled) {
    MetricsRegistry& reg = MetricsRegistry::Default();
    reg.GetCounter("morsel.splits")->Increment(pstats.splits);
    reg.GetCounter("morsel.steals")->Increment(pstats.steals);
  }
}

}  // namespace

Result<query::GroupedResult> ParallelArrayConsolidate(
    const OlapArray& array, const query::ConsolidationQuery& q,
    size_t num_threads, PhaseTimer* timer, ParallelConsolidateStats* stats,
    const CancellationToken* cancel, const MorselOptions& morsel_options) {
  if (q.HasSelection()) {
    return Status::InvalidArgument(
        "ParallelArrayConsolidate handles no-selection queries; use "
        "ParallelArrayConsolidateWithSelection");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));

  // The chunk list is cheap to enumerate (directory lookups only) and fixes
  // the claim order for the read-ahead window.
  std::vector<uint64_t> chunks;
  const uint64_t num_chunks = array.layout().num_chunks();
  for (uint64_t c = 0; c < num_chunks; ++c) {
    if (!array.array(q.measure).ChunkIsEmpty(c)) chunks.push_back(c);
  }

  std::vector<std::vector<query::AggState>> partials(
      num_threads, std::vector<query::AggState>(spec.num_groups));
  std::atomic<uint64_t> chunks_read{0};
  MorselPoolStats pool_stats;
  {
    ScopedPhase phase(timer, "scan+aggregate");
    ChunkReadAhead cursor = MakeCursor(array, q.measure, std::move(chunks));
    MorselOptions pool_options = morsel_options;
    if (pool_options.cancel == nullptr) pool_options.cancel = cancel;
    MorselPool pool(&cursor, pool_options);
    PARADISE_RETURN_IF_ERROR(RunWorkers(num_threads, [&](size_t w) -> Status {
      // Per-worker reusable decode tables; a worker processing several
      // morsels of one chunk builds them once.
      kernels::KernelTables tables;
      bool have_tables = false;
      uint64_t tables_chunk = 0;
      Morsel m;
      for (;;) {
        if (cancel != nullptr) {
          PARADISE_RETURN_IF_ERROR(cancel->Check());
        }
        PARADISE_ASSIGN_OR_RETURN(bool more, pool.Next(w, &m));
        if (!more) return Status::OK();
        if (m.first) chunks_read.fetch_add(1, std::memory_order_relaxed);
        if (!have_tables || tables_chunk != m.chunk_no) {
          tables.Build(array, spec, m.chunk_no);
          tables_chunk = m.chunk_no;
          have_tables = true;
        }
        kernels::AggregateRange(*m.view, m.begin, m.end, tables,
                                partials[w].data());
      }
    }));
    pool_stats = pool.stats();
  }

  std::vector<query::AggState> flat;
  {
    ScopedPhase phase(timer, "merge");
    flat = MergePartials(spec.num_groups, &partials);
  }
  if (stats != nullptr) {
    stats->chunks_read = chunks_read.load(std::memory_order_relaxed);
    stats->threads_used = num_threads;
  }
  RecordMorselStats(array, pool_stats, stats);
  ScopedPhase phase(timer, "emit");
  return FlatToGroupedResult(spec, flat, spec.GroupColumnNames(array));
}

Result<query::GroupedResult> ParallelArrayConsolidateWithSelection(
    const OlapArray& array, const query::ConsolidationQuery& q,
    size_t num_threads, PhaseTimer* timer, ArraySelectStats* select_stats,
    ParallelConsolidateStats* stats, const ArraySelectOptions& options,
    const MorselOptions& morsel_options) {
  using select_detail::MakeSelectionPlan;
  using select_detail::PlanSelectionChunks;
  using select_detail::ProbeSelectionRange;
  using select_detail::SelectionChunkWork;
  using select_detail::SelectionPlan;

  if (!q.HasSelection()) {
    return Status::InvalidArgument(
        "ParallelArrayConsolidateWithSelection requires a selection; use "
        "ParallelArrayConsolidate");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  PARADISE_ASSIGN_OR_RETURN(GroupSpec spec, GroupSpec::Make(array, q));

  // Phase 1 stays serial: B-tree probes and list merges are a tiny fraction
  // of query time and share the (read-only) index structures.
  SelectionPlan plan;
  {
    ScopedPhase phase(timer, "index-lookup");
    PARADISE_ASSIGN_OR_RETURN(plan, MakeSelectionPlan(array, q, spec));
    if (plan.empty) {
      if (stats != nullptr) stats->threads_used = num_threads;
      return FlatToGroupedResult(spec, {}, spec.GroupColumnNames(array));
    }
  }

  // The overlap scan is pure CPU over the chunk directory; running it
  // serially fixes the candidate order (chunk-number = physical order, what
  // read-ahead wants) before any chunk I/O happens.
  const std::vector<SelectionChunkWork> work_items =
      PlanSelectionChunks(array, q, plan, options, select_stats);

  std::vector<std::vector<query::AggState>> partials(
      num_threads, std::vector<query::AggState>(spec.num_groups));
  std::vector<ArraySelectStats> worker_stats(num_threads);
  MorselPoolStats pool_stats;
  {
    ScopedPhase phase(timer, "probe+aggregate");
    std::vector<uint64_t> chunks;
    chunks.reserve(work_items.size());
    for (const SelectionChunkWork& w : work_items) chunks.push_back(w.chunk_no);
    ChunkReadAhead cursor = MakeCursor(array, q.measure, std::move(chunks));
    MorselOptions pool_options = morsel_options;
    if (pool_options.cancel == nullptr) pool_options.cancel = options.cancel;
    SelectionMorselPool pool(&cursor, &work_items, pool_options);
    PARADISE_RETURN_IF_ERROR(RunWorkers(num_threads, [&](size_t w) -> Status {
      SelectionMorsel m;
      // Narrowed copy of a split morsel's work item; reused so a split costs
      // no allocation once the slice vectors reach capacity.
      SelectionChunkWork scratch;
      for (;;) {
        if (options.cancel != nullptr) {
          PARADISE_RETURN_IF_ERROR(options.cancel->Check());
        }
        PARADISE_ASSIGN_OR_RETURN(bool more, pool.Next(w, &m));
        if (!more) return Status::OK();
        ArraySelectStats* const ws =
            select_stats != nullptr ? &worker_stats[w] : nullptr;
        if (m.first && ws != nullptr) ++ws->chunks_read;
        if (!m.work->overlap) continue;  // ablation path: nothing to probe
        const SelectionChunkWork* work = m.work;
        if (m.split) {
          scratch = *m.work;
          scratch.slice_begin[m.split_dim] = m.split_begin;
          scratch.slice_end[m.split_dim] = m.split_end;
          work = &scratch;
        }
        PARADISE_RETURN_IF_ERROR(ProbeSelectionRange(
            array, spec, plan, *work, *m.view, &partials[w], ws));
      }
    }));
    pool_stats = pool.stats();
  }

  std::vector<query::AggState> flat;
  {
    ScopedPhase phase(timer, "merge");
    flat = MergePartials(spec.num_groups, &partials);
  }
  if (select_stats != nullptr) {
    for (const ArraySelectStats& ws : worker_stats) {
      select_stats->chunks_read += ws.chunks_read;
      select_stats->candidates += ws.candidates;
      select_stats->hits += ws.hits;
    }
  }
  if (stats != nullptr) {
    stats->threads_used = num_threads;
    if (select_stats != nullptr) stats->chunks_read = select_stats->chunks_read;
  }
  RecordMorselStats(array, pool_stats, stats);
  ScopedPhase phase(timer, "emit");
  return FlatToGroupedResult(spec, flat, spec.GroupColumnNames(array));
}

}  // namespace paradise
