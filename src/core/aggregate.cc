#include "core/aggregate.h"

namespace paradise {

Result<GroupSpec> GroupSpec::Make(const OlapArray& array,
                                  const query::ConsolidationQuery& q) {
  PARADISE_RETURN_IF_ERROR(q.Validate(array.DimNumColumns()));
  if (q.measure >= array.num_measures()) {
    return Status::InvalidArgument(
        "measure index " + std::to_string(q.measure) + " out of range (" +
        std::to_string(array.num_measures()) + " measures)");
  }
  GroupSpec spec;
  for (size_t d = 0; d < q.dims.size(); ++d) {
    if (!q.dims[d].group_by_col.has_value()) continue;
    const size_t col = *q.dims[d].group_by_col;
    spec.grouped_dims.push_back(d);
    spec.group_cols.push_back(col);
    spec.cardinalities.push_back(array.i2i(d).Cardinality(col));
  }
  spec.strides.resize(spec.grouped_dims.size());
  uint64_t stride = 1;
  for (size_t g = spec.grouped_dims.size(); g > 0; --g) {
    spec.strides[g - 1] = stride;
    stride *= static_cast<uint64_t>(spec.cardinalities[g - 1]);
  }
  spec.num_groups = stride;
  return spec;
}

std::vector<std::string> GroupSpec::GroupColumnNames(
    const OlapArray& array) const {
  std::vector<std::string> names;
  names.reserve(grouped_dims.size());
  for (size_t g = 0; g < grouped_dims.size(); ++g) {
    const size_t d = grouped_dims[g];
    names.push_back(array.dim_name(d) + "." +
                    array.dim_schema(d).column(group_cols[g]).name);
  }
  return names;
}

std::vector<int32_t> GroupSpec::Decode(uint64_t flat) const {
  std::vector<int32_t> codes(grouped_dims.size());
  for (size_t g = 0; g < grouped_dims.size(); ++g) {
    codes[g] = static_cast<int32_t>(
        (flat / strides[g]) % static_cast<uint64_t>(cardinalities[g]));
  }
  return codes;
}

query::GroupedResult FlatToGroupedResult(
    const GroupSpec& spec, const std::vector<query::AggState>& flat,
    std::vector<std::string> columns) {
  query::GroupedResult result(std::move(columns));
  for (uint64_t i = 0; i < flat.size(); ++i) {
    if (flat[i].count == 0) continue;
    result.Add(query::ResultRow{spec.Decode(i), flat[i]});
  }
  result.SortCanonical();
  return result;
}

}  // namespace paradise
