// IndexToIndexArray (paper §3.4): for one dimension, the map from the base
// array index (row position of the member in its dimension table) to the
// dense index of that member's ancestor at each hierarchy level — "the array
// equivalent of the hierarchy information in the dimension table". Level l
// corresponds to attribute column l of the dimension schema (column 0, the
// key, is the identity level).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace paradise {

class DimensionTable;

class IndexToIndexArray {
 public:
  IndexToIndexArray() = default;

  /// Builds the map for every attribute column of `dim`.
  static Result<IndexToIndexArray> FromDimension(const DimensionTable& dim);

  /// Number of base members (dimension size).
  uint32_t num_members() const { return num_members_; }

  /// Number of levels (= dimension columns; level 0 is the key/identity).
  size_t num_levels() const { return cardinalities_.size(); }

  /// Distinct values at `level`.
  int32_t Cardinality(size_t level) const { return cardinalities_[level]; }

  /// Level index of base member `base` at `level`. Level 0 returns `base`.
  int32_t Map(size_t level, uint32_t base) const {
    return level == 0 ? static_cast<int32_t>(base) : maps_[level][base];
  }

  /// The whole map column for `level` (level >= 1), for tight loops.
  const std::vector<int32_t>& MapColumn(size_t level) const {
    return maps_[level];
  }

  /// The code→code roll-up from `from_level` to `to_level`, when the data
  /// satisfies the functional dependency from→to: out[f] == c iff every base
  /// member whose `from_level` code is f has `to_level` code c. Because
  /// dictionary codes are assigned from actual members, every code in
  /// [0, Cardinality(from_level)) is covered. Returns nullopt when the
  /// dependency does not hold (some from-code spans two to-codes), which is
  /// how the result cache decides a cached finer-level consolidation can be
  /// re-aggregated to answer a coarser group-by exactly.
  std::optional<std::vector<int32_t>> FunctionalRollUp(size_t from_level,
                                                       size_t to_level) const;

  std::string Serialize() const;
  static Result<IndexToIndexArray> Deserialize(std::string_view data,
                                               size_t* consumed);

  bool operator==(const IndexToIndexArray& o) const {
    return num_members_ == o.num_members_ &&
           cardinalities_ == o.cardinalities_ && maps_ == o.maps_;
  }

 private:
  uint32_t num_members_ = 0;
  std::vector<int32_t> cardinalities_;          // per level
  std::vector<std::vector<int32_t>> maps_;      // per level (level 0 unused)
};

}  // namespace paradise
