// The CUBE operator over the OLAP Array ADT: computes all 2^n group-bys
// ("cuboids") of one level per dimension in a single pass — the
// simultaneous multi-dimensional aggregation of the authors' companion
// paper [ZDN97], which §1 cites as the previous work this ADT generalizes.
//
// Algorithm: the finest cuboid (all dimensions grouped) is aggregated
// directly from the chunked array exactly like ArrayConsolidate; every
// coarser cuboid is then aggregated not from the base data but from its
// *smallest parent* in the cuboid lattice, the key cost-saving idea of
// [ZDN97]. All intermediate cuboids are position-based flat arrays.
#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "core/olap_array.h"
#include "query/query.h"
#include "query/result.h"

namespace paradise {

struct CubeQuery {
  /// Hierarchy level (attribute column, >= 1) per dimension.
  std::vector<size_t> level_cols;
  query::AggFunc agg = query::AggFunc::kSum;
};

/// One computed cuboid: the dimensions it groups (bitmask over dimensions)
/// and its result rows.
struct Cuboid {
  uint32_t mask = 0;  // bit d set => dimension d grouped at level_cols[d]
  query::GroupedResult result;
};

struct CubeStats {
  uint64_t chunks_read = 0;
  /// Aggregation operations performed; the lattice scheme makes this far
  /// smaller than 2^n * valid_cells (the naive simultaneous cost).
  uint64_t aggregate_ops = 0;
};

/// Computes all 2^n cuboids (including the all-collapsed grand total,
/// mask 0). Cuboids are returned in decreasing mask-popcount order; each
/// cuboid's result equals ArrayConsolidate of the corresponding query.
Result<std::vector<Cuboid>> ArrayCube(const OlapArray& array,
                                      const CubeQuery& cube,
                                      PhaseTimer* timer = nullptr,
                                      CubeStats* stats = nullptr);

}  // namespace paradise
