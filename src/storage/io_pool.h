// IoPool: a small fixed-size background thread pool that serves chunk
// read-ahead (array/chunk_prefetcher.h). Tasks are opaque closures; the pool
// guarantees only ordering-free execution and a Drain() barrier, which is
// all read-ahead needs — prefetch tasks are idempotent hints, never
// correctness-bearing work.
//
// The StorageManager owns one pool per database (created when
// StorageOptions::io_pool_threads > 0) and quiesces it with Drain() before
// any operation that assumes no I/O is in flight (FlushAndEvictAll,
// Checkpoint, Close), so cache-dropping and commit protocols never race a
// background read.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paradise {

class IoPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit IoPool(size_t num_threads);

  /// Stops accepting work, discards queued tasks, joins the workers.
  ~IoPool();

  IoPool(const IoPool&) = delete;
  IoPool& operator=(const IoPool&) = delete;

  /// Enqueues `task` for execution on some worker. Returns false (dropping
  /// the task) after Shutdown() — callers treat a refused prefetch as a
  /// cache miss, so this is safe at any time.
  bool Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished and no worker is
  /// mid-task. New Submit() calls during a Drain() may or may not be waited
  /// on; callers quiesce producers first.
  void Drain();

  /// Irreversibly stops the pool: pending tasks are discarded, running ones
  /// finish, workers join. Idempotent; also run by the destructor.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks / shutdown
  std::condition_variable drain_cv_;  // Drain() waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;  // tasks currently executing
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace paradise
