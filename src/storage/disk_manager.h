// DiskManager: the lowest storage layer. Owns the database file, allocates
// and frees pages (free pages form an on-disk linked list threaded through
// their first 8 bytes), and performs raw page I/O. All higher layers access
// pages through the BufferPool, never through this class directly.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace paradise {

class DiskManager {
 public:
  DiskManager() = default;
  ~DiskManager();

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  /// Creates a new database file (fails if it exists unless
  /// options.allow_overwrite) and writes a fresh header.
  Status Create(const std::string& path, const StorageOptions& options);

  /// Opens an existing database file and validates its header.
  Status Open(const std::string& path, const StorageOptions& options);

  /// Flushes the header and closes the file. Idempotent.
  Status Close();

  bool is_open() const { return file_ != nullptr; }
  size_t page_size() const { return page_size_; }
  uint64_t page_count() const { return page_count_; }
  const std::string& path() const { return path_; }

  /// Reads page `id` into `buf` (page_size() bytes).
  Status ReadPage(PageId id, char* buf);

  /// Writes page `id` from `buf` (page_size() bytes).
  Status WritePage(PageId id, const char* buf);

  /// Allocates one page, reusing the free list when possible. The page's
  /// contents are unspecified; callers must initialize it.
  Result<PageId> AllocatePage();

  /// Allocates `n` physically contiguous pages at the end of the file and
  /// returns the first PageId. Used for fact-file extents.
  Result<PageId> AllocateContiguous(uint64_t n);

  /// Returns page `id` to the free list.
  Status FreePage(PageId id);

  /// Reads/writes the root-catalog ObjectId slot in the header.
  ObjectId catalog_oid() const { return catalog_oid_; }
  void set_catalog_oid(ObjectId oid) { catalog_oid_ = oid; }

  /// Persists the header page and fsyncs the file.
  Status Sync();

  /// Number of physical page reads/writes performed (for I/O accounting).
  uint64_t reads_performed() const { return reads_; }
  uint64_t writes_performed() const { return writes_; }

 private:
  Status WriteHeader();
  Status ReadHeader();
  Status CheckPageId(PageId id) const;

  std::FILE* file_ = nullptr;
  std::string path_;
  size_t page_size_ = 0;
  uint64_t page_count_ = 0;
  PageId free_list_head_ = kInvalidPageId;
  ObjectId catalog_oid_ = kInvalidObjectId;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace paradise
