// Disk: the virtual interface of the lowest storage layer, and DiskManager,
// its real implementation. The DiskManager owns the database file, allocates
// and frees pages (free pages form an on-disk linked list threaded through
// their first 8 bytes), and performs raw page I/O with per-page CRC32C
// verification (format v2; legacy v1 files are read without checksums). All
// higher layers access pages through the BufferPool, which talks to a Disk* —
// so a FaultInjectingDiskManager (storage/fault_injection.h) can interpose
// on every page transfer without the upper layers noticing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace paradise {

/// Abstract page-file interface. One concrete implementation (DiskManager)
/// plus decorators (FaultInjectingDiskManager).
class Disk {
 public:
  virtual ~Disk() = default;

  /// Creates a new database file (fails if it exists unless
  /// options.allow_overwrite) and writes a fresh header.
  virtual Status Create(const std::string& path,
                        const StorageOptions& options) = 0;

  /// Opens an existing database file and validates its header.
  virtual Status Open(const std::string& path,
                      const StorageOptions& options) = 0;

  /// Flushes the header and closes the file. Idempotent. Flush or close
  /// failures are reported — callers must not assume Close() cannot fail.
  virtual Status Close() = 0;

  /// Pushes buffered writes to the operating system.
  virtual Status Flush() = 0;

  virtual bool is_open() const = 0;
  virtual size_t page_size() const = 0;
  virtual uint64_t page_count() const = 0;
  virtual const std::string& path() const = 0;

  /// On-disk format version (page_header::kFormat*).
  virtual uint32_t format_version() const = 0;

  /// Byte offset of page `id` in the file (checksum trailers included), for
  /// storage accounting and fault-injection tooling.
  virtual uint64_t PhysicalPageOffset(PageId id) const = 0;

  /// Reads page `id` into `buf` (page_size() bytes), verifying its checksum
  /// on v2 files. A mismatch is kCorruption naming the page.
  virtual Status ReadPage(PageId id, char* buf) = 0;

  /// Writes page `id` from `buf` (page_size() bytes), appending a fresh
  /// checksum trailer on v2 files.
  virtual Status WritePage(PageId id, const char* buf) = 0;

  /// Allocates one page, reusing the free list when possible. The page's
  /// contents are unspecified; callers must initialize it.
  virtual Result<PageId> AllocatePage() = 0;

  /// Allocates `n` physically contiguous pages at the end of the file and
  /// returns the first PageId. Used for fact-file extents.
  virtual Result<PageId> AllocateContiguous(uint64_t n) = 0;

  /// Returns page `id` to the free list.
  virtual Status FreePage(PageId id) = 0;

  /// Reads/writes the root-catalog ObjectId slot in the header.
  virtual ObjectId catalog_oid() const = 0;
  virtual void set_catalog_oid(ObjectId oid) = 0;

  /// Persists the header page and flushes the file.
  virtual Status Sync() = 0;

  /// Number of physical page reads/writes performed (for I/O accounting).
  virtual uint64_t reads_performed() const = 0;
  virtual uint64_t writes_performed() const = 0;
};

class DiskManager final : public Disk {
 public:
  DiskManager() = default;
  ~DiskManager() override;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  Status Create(const std::string& path, const StorageOptions& options) override;
  Status Open(const std::string& path, const StorageOptions& options) override;
  Status Close() override;
  Status Flush() override;

  bool is_open() const override { return file_ != nullptr; }
  size_t page_size() const override { return page_size_; }
  uint64_t page_count() const override { return page_count_; }
  const std::string& path() const override { return path_; }
  uint32_t format_version() const override { return format_version_; }
  uint64_t PhysicalPageOffset(PageId id) const override {
    return id * stride_;
  }

  Status ReadPage(PageId id, char* buf) override;
  Status WritePage(PageId id, const char* buf) override;
  Result<PageId> AllocatePage() override;
  Result<PageId> AllocateContiguous(uint64_t n) override;
  Status FreePage(PageId id) override;

  ObjectId catalog_oid() const override { return catalog_oid_; }
  void set_catalog_oid(ObjectId oid) override { catalog_oid_ = oid; }

  Status Sync() override;

  uint64_t reads_performed() const override { return reads_; }
  uint64_t writes_performed() const override { return writes_; }

 private:
  Status WriteHeader();
  Status ReadHeader();
  Status CheckPageId(PageId id) const;

  /// CRC32C over a page's data bytes extended with its encoded PageId, so a
  /// page written to the wrong slot also fails verification.
  uint32_t PageCrc(PageId id, const char* buf) const;

  std::FILE* file_ = nullptr;
  std::string path_;
  size_t page_size_ = 0;
  uint32_t format_version_ = page_header::kFormatChecksummed;
  uint64_t stride_ = 0;  // physical bytes per page (page_size_ + trailer)
  uint64_t page_count_ = 0;
  PageId free_list_head_ = kInvalidPageId;
  ObjectId catalog_oid_ = kInvalidObjectId;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace paradise
