// Disk: the virtual interface of the lowest storage layer, and DiskManager,
// its real implementation. The DiskManager owns the database file, allocates
// and frees pages (free pages form an on-disk linked list threaded through
// their first 8 bytes; pages the committed manifest's chain references are
// never handed out until a newer manifest stops referencing them, so a
// crash can always walk the recovered chain), and performs raw page I/O
// with per-page CRC32C
// verification (format v2+; legacy v1 files are read without checksums).
// Format v3 adds a dual-slot commit manifest (pages 1 and 2) so that commits
// are atomic under power loss: Commit() writes the alternate slot and
// fsyncs, and Open() adopts the newest slot whose CRC validates. All higher
// layers access pages through the BufferPool, which talks to a Disk* — so a
// FaultInjectingDiskManager (storage/fault_injection.h) can interpose on
// every page transfer without the upper layers noticing.
#pragma once

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace paradise {

/// Abstract page-file interface. One concrete implementation (DiskManager)
/// plus decorators (FaultInjectingDiskManager).
class Disk {
 public:
  virtual ~Disk() = default;

  /// Creates a new database file (fails if it exists unless
  /// options.allow_overwrite), writes a fresh header (and, on v3, the first
  /// manifest), and makes the result durable.
  virtual Status Create(const std::string& path,
                        const StorageOptions& options) = 0;

  /// Opens an existing database file, validates its header, and on v3 files
  /// recovers the newest valid manifest slot.
  virtual Status Open(const std::string& path,
                      const StorageOptions& options) = 0;

  /// Commits current metadata (see Commit()) and closes the file.
  /// Idempotent; the handle is released even when the commit fails, and the
  /// failure is reported — callers must not assume Close() cannot fail.
  virtual Status Close() = 0;

  /// Closes the file WITHOUT committing: whatever the last successful
  /// Commit() (or Create()) made durable stays the recovered state. Used
  /// after a failure when committing could persist a half-written state.
  virtual void Abandon() = 0;

  /// Pushes buffered writes to the operating system (no durability barrier;
  /// see Sync()).
  virtual Status Flush() = 0;

  virtual bool is_open() const = 0;
  virtual size_t page_size() const = 0;
  virtual uint64_t page_count() const = 0;
  virtual const std::string& path() const = 0;

  /// On-disk format version (page_header::kFormat*).
  virtual uint32_t format_version() const = 0;

  /// Byte offset of page `id` in the file (checksum trailers included), for
  /// storage accounting and fault-injection tooling.
  virtual uint64_t PhysicalPageOffset(PageId id) const = 0;

  /// Reads page `id` into `buf` (page_size() bytes), verifying its checksum
  /// on v2+ files. A mismatch is kCorruption naming the page.
  virtual Status ReadPage(PageId id, char* buf) = 0;

  /// Writes page `id` from `buf` (page_size() bytes), appending a fresh
  /// checksum trailer on v2+ files.
  virtual Status WritePage(PageId id, const char* buf) = 0;

  /// Allocates one page, reusing the free list when possible. The page's
  /// contents are unspecified; callers must initialize it.
  virtual Result<PageId> AllocatePage() = 0;

  /// Allocates `n` physically contiguous pages at the end of the file and
  /// returns the first PageId. Used for fact-file extents.
  virtual Result<PageId> AllocateContiguous(uint64_t n) = 0;

  /// Returns page `id` to the free list. Freeing a page twice in one session
  /// is detected and reported as kCorruption.
  virtual Status FreePage(PageId id) = 0;

  /// Reads/writes the in-memory root-catalog ObjectId (persisted by the next
  /// Commit()).
  virtual ObjectId catalog_oid() const = 0;
  virtual void set_catalog_oid(ObjectId oid) = 0;

  /// Current free-list head (kInvalidPageId when empty), for scrub tooling.
  virtual PageId free_list_head() const = 0;

  /// Load-state flag carried in the manifest (page_header::kLoad*); v1/v2
  /// files have no durable slot for it and always report kLoadCommitted.
  virtual uint32_t load_state() const = 0;
  virtual void set_load_state(uint32_t state) = 0;

  /// Durability barrier: forces previously written pages down to stable
  /// storage (fsync). Does NOT commit metadata.
  virtual Status Sync() = 0;

  /// Atomically commits current metadata (page count, free list, catalog
  /// oid, load state) and makes it durable. On v3 this writes the alternate
  /// manifest slot with the next epoch and fsyncs; a crash at any point
  /// leaves the previous commit recoverable. On v1/v2 it rewrites the header
  /// in place (not torn-write-safe; the legacy gap is documented in
  /// DESIGN.md).
  virtual Status Commit() = 0;

  /// Epoch of the most recent commit (0 before any; Create() commits epoch 1
  /// on v3 files).
  virtual uint64_t commit_epoch() const = 0;

  /// Number of physical page reads/writes performed (for I/O accounting).
  virtual uint64_t reads_performed() const = 0;
  virtual uint64_t writes_performed() const = 0;
};

class DiskManager final : public Disk {
 public:
  DiskManager() = default;
  ~DiskManager() override;

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  Status Create(const std::string& path, const StorageOptions& options) override;
  Status Open(const std::string& path, const StorageOptions& options) override;
  Status Close() override;
  void Abandon() override;
  Status Flush() override;

  bool is_open() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return file_ != nullptr;
  }
  size_t page_size() const override { return page_size_; }
  uint64_t page_count() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return page_count_;
  }
  const std::string& path() const override { return path_; }
  uint32_t format_version() const override { return format_version_; }
  uint64_t PhysicalPageOffset(PageId id) const override {
    return id * stride_;
  }

  Status ReadPage(PageId id, char* buf) override;
  Status WritePage(PageId id, const char* buf) override;
  Result<PageId> AllocatePage() override;
  Result<PageId> AllocateContiguous(uint64_t n) override;
  Status FreePage(PageId id) override;

  ObjectId catalog_oid() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return catalog_oid_;
  }
  void set_catalog_oid(ObjectId oid) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    dirty_since_commit_ = dirty_since_commit_ || catalog_oid_ != oid;
    catalog_oid_ = oid;
  }
  PageId free_list_head() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return free_list_head_;
  }
  uint32_t load_state() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return load_state_;
  }
  void set_load_state(uint32_t state) override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    dirty_since_commit_ = dirty_since_commit_ || load_state_ != state;
    load_state_ = state;
  }

  Status Sync() override;
  Status Commit() override;
  uint64_t commit_epoch() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return epoch_;
  }

  uint64_t reads_performed() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return reads_;
  }
  uint64_t writes_performed() const override {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return writes_;
  }

 private:
  Status WriteHeader();
  Status ReadHeader();
  Status LoadManifest();
  Status CommitManifest();
  Status SyncFile();
  Status CheckPageId(PageId id) const;
  Status CheckWritable() const;

  /// Unlinks and returns the chain head, validating its next-link (a
  /// clobbered link is reported as kCorruption naming the free list).
  Result<PageId> PopFreeListHead();
  /// Writes `id`'s next-link (the current head) and makes it the new head.
  Status PushFreeListHead(PageId id);

  /// CRC32C over a page's data bytes extended with its encoded PageId, so a
  /// page written to the wrong slot also fails verification.
  uint32_t PageCrc(PageId id, const char* buf) const;

  /// Serializes every file operation and all mutable metadata: the stdio
  /// handle seeks before each transfer, so concurrent page I/O from the
  /// sharded buffer pool and the background read-ahead pool must take turns
  /// here. Recursive because public operations compose (Close→Commit,
  /// AllocatePage→ReadPage, FreePage→WritePage). The mutex is a leaf in the
  /// lock order: no code path calls back up into the pool while holding it.
  mutable std::recursive_mutex mu_;

  std::FILE* file_ = nullptr;
  std::string path_;
  size_t page_size_ = 0;
  uint32_t format_version_ = page_header::kFormatChecksummed;
  uint64_t stride_ = 0;  // physical bytes per page (page_size_ + trailer)
  uint64_t page_count_ = 0;
  PageId free_list_head_ = kInvalidPageId;
  ObjectId catalog_oid_ = kInvalidObjectId;
  uint32_t load_state_ = page_header::kLoadCommitted;
  uint64_t epoch_ = 0;
  bool read_only_ = false;
  // True when any state the manifest covers (pages, free list, catalog oid,
  // load state) changed since the last commit. A clean v3 Commit() is a
  // no-op, so a session that only reads never advances the epoch or touches
  // the file's manifest slots. Also set when recovery finds only one valid
  // slot, so the next commit restores dual-slot redundancy.
  bool dirty_since_commit_ = false;
  // Pages freed since open and not yet re-allocated; a second FreePage() of
  // any of them would corrupt the free list, so it is rejected instead.
  std::unordered_set<PageId> session_freed_;
  // Crash safety of the intrusive free list (manifest formats): the chain
  // the durable manifest records must stay byte-intact until a newer
  // manifest commits, or post-crash recovery would walk next-links through
  // pages that were reallocated and overwritten with data. Pages freed
  // since the last commit form the chain's head prefix and are dead in
  // every durable manifest, so AllocatePage may hand them out immediately;
  // `fresh_free_pages_` counts them. The durable suffix may only be popped
  // into `pending_reuse_` (the on-disk pages untouched) — once a commit
  // records the advanced head those pages are unreferenced by any durable
  // state and move to `reusable_` for actual reallocation. A crash loses
  // staged ids (the pages leak, which verify tolerates; a clean Close
  // re-chains them so nothing is lost on shutdown) but never corrupts the
  // committed chain.
  uint64_t fresh_free_pages_ = 0;
  std::vector<PageId> pending_reuse_;
  std::vector<PageId> reusable_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;

  /// Registry latency histograms ("disk.read_micros" / "disk.write_micros" /
  /// "disk.sync_micros"), resolved at Create/Open when
  /// StorageOptions::metrics_enabled is set; null (one test per I/O) when
  /// metrics are off.
  Histogram* h_read_micros_ = nullptr;
  Histogram* h_write_micros_ = nullptr;
  Histogram* h_sync_micros_ = nullptr;
};

/// Reads the raw file header of `path` and returns StorageOptions matching
/// the file (page size; format_version as stored). Lets tooling open a
/// database file without knowing its page size in advance.
Result<StorageOptions> ProbeStorageOptions(const std::string& path);

}  // namespace paradise
