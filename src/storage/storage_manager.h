// StorageManager: facade tying together the disk manager, the buffer pool
// and the large-object store, plus a small persistent name→id catalog so
// database structures (fact files, B-trees, arrays) can be found again after
// reopening the file. This is the library's SHORE substitute (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/io_pool.h"
#include "storage/large_object.h"

namespace paradise {

class StorageManager {
 public:
  StorageManager() = default;
  ~StorageManager();

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Creates a new database file.
  Status Create(const std::string& path, const StorageOptions& options);

  /// Opens an existing database file and loads the root catalog.
  Status Open(const std::string& path, const StorageOptions& options);

  /// Runs a final Checkpoint() and closes the file. Idempotent. On
  /// read-only managers, simply releases the handle.
  Status Close();

  bool is_open() const { return disk_ != nullptr && disk_->is_open(); }

  BufferPool* pool() { return pool_.get(); }
  Disk* disk() { return disk_.get(); }
  const Disk* disk() const { return disk_.get(); }
  LargeObjectStore* objects() { return objects_.get(); }
  const StorageOptions& options() const { return options_; }

  /// Commit epoch of the manifest slot currently on disk. Advances on every
  /// durable commit (Checkpoint/Close of a dirtied file) and versions
  /// anything derived from the file's contents — notably cached query
  /// results (query/result_cache.h).
  uint64_t commit_epoch() const { return disk_->commit_epoch(); }

  /// Background I/O pool serving chunk read-ahead, or nullptr when
  /// options().io_pool_threads == 0.
  IoPool* io_pool() { return io_pool_.get(); }

  /// Blocks until the background I/O pool is idle (no-op without a pool).
  /// Called before cache-dropping and commit operations; also available to
  /// callers that need a quiescent pool (e.g. Database::DropCaches).
  void QuiesceIo() {
    if (io_pool_ != nullptr) io_pool_->Drain();
  }

  /// Associates `name` with a page/object id in the persistent catalog.
  Status SetRoot(const std::string& name, uint64_t value);

  /// Looks up a catalog entry.
  Result<uint64_t> GetRoot(const std::string& name) const;

  bool HasRoot(const std::string& name) const {
    return catalog_.contains(name);
  }

  /// Removes a catalog entry (NotFound if absent).
  Status RemoveRoot(const std::string& name);

  /// All catalog entries, for introspection tools.
  const std::map<std::string, uint64_t>& catalog() const { return catalog_; }

  /// Durably commits the current state without closing: persists the
  /// catalog (copy-on-write), flushes dirty pages, fsyncs, and commits the
  /// manifest. After a successful Checkpoint a crash at any later point
  /// recovers exactly this state.
  Status Checkpoint();

  /// Cold-run protocol: flush everything and empty the buffer pool. NOT a
  /// durability point — nothing is fsynced or committed; use Checkpoint()
  /// for that.
  Status FlushAndEvictAll();

  /// Load-state flag stored in the commit manifest (page_header::kLoad*);
  /// persisted by the next Checkpoint()/Close(). On v1/v2 files the flag
  /// has no durable slot and reads back kLoadCommitted.
  uint32_t load_state() const { return disk_->load_state(); }
  void set_load_state(uint32_t state) { disk_->set_load_state(state); }

  /// Total file size in bytes (for storage-footprint reporting).
  uint64_t FileSizeBytes() const;

 private:
  Status LoadCatalog();
  Status PersistCatalog();
  Status FreeStaleCatalog();

  /// Builds the (possibly wrapped) disk stack per options_.wrap_disk.
  std::unique_ptr<Disk> MakeDisk() const;

  StorageOptions options_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<BufferPool> pool_;
  // Members destroy in reverse declaration order, so the I/O pool — whose
  // workers read through pool_ and disk_ — must be declared after both to be
  // torn down first.
  std::unique_ptr<IoPool> io_pool_;
  std::unique_ptr<LargeObjectStore> objects_;
  std::map<std::string, uint64_t> catalog_;
  bool catalog_dirty_ = false;
  // Catalog blob named by the last committed manifest, superseded by a
  // copy-on-write rewrite but not yet safe to free (see Checkpoint()).
  ObjectId stale_catalog_oid_ = kInvalidObjectId;
};

}  // namespace paradise
