// StorageManager: facade tying together the disk manager, the buffer pool
// and the large-object store, plus a small persistent name→id catalog so
// database structures (fact files, B-trees, arrays) can be found again after
// reopening the file. This is the library's SHORE substitute (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/large_object.h"

namespace paradise {

class StorageManager {
 public:
  StorageManager() = default;
  ~StorageManager();

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Creates a new database file.
  Status Create(const std::string& path, const StorageOptions& options);

  /// Opens an existing database file and loads the root catalog.
  Status Open(const std::string& path, const StorageOptions& options);

  /// Persists the catalog, flushes all pages and closes. Idempotent.
  Status Close();

  bool is_open() const { return disk_ != nullptr && disk_->is_open(); }

  BufferPool* pool() { return pool_.get(); }
  Disk* disk() { return disk_.get(); }
  LargeObjectStore* objects() { return objects_.get(); }
  const StorageOptions& options() const { return options_; }

  /// Associates `name` with a page/object id in the persistent catalog.
  Status SetRoot(const std::string& name, uint64_t value);

  /// Looks up a catalog entry.
  Result<uint64_t> GetRoot(const std::string& name) const;

  bool HasRoot(const std::string& name) const {
    return catalog_.contains(name);
  }

  /// Removes a catalog entry (NotFound if absent).
  Status RemoveRoot(const std::string& name);

  /// All catalog entries, for introspection tools.
  const std::map<std::string, uint64_t>& catalog() const { return catalog_; }

  /// Persists the catalog and flushes dirty pages without closing.
  Status Checkpoint();

  /// Cold-run protocol: flush everything and empty the buffer pool.
  Status FlushAndEvictAll();

  /// Total file size in bytes (for storage-footprint reporting).
  uint64_t FileSizeBytes() const;

 private:
  Status LoadCatalog();
  Status PersistCatalog();

  /// Builds the (possibly wrapped) disk stack per options_.wrap_disk.
  std::unique_ptr<Disk> MakeDisk() const;

  StorageOptions options_;
  std::unique_ptr<Disk> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LargeObjectStore> objects_;
  std::map<std::string, uint64_t> catalog_;
  bool catalog_dirty_ = false;
};

}  // namespace paradise
