// ExtentAllocator: maps a growing logical page space onto physically
// contiguous page runs (extents), exactly the structure the paper's fact
// file uses (§4.4): "the fact file allocates n pages in groups called
// extents ... it uses an internal tree structure to keep the pointers to the
// first page of each extent." Our directory is a chained list of meta pages
// holding extent first-page ids; lookup is O(1) because all extents have the
// same size.
#pragma once

#include <cstdint>
#include <vector>

#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace paradise {

class ExtentAllocator {
 public:
  ExtentAllocator(BufferPool* pool, Disk* disk)
      : pool_(pool), disk_(disk) {}

  /// Creates a fresh extent directory; returns its root PageId.
  Result<PageId> Create(uint32_t pages_per_extent);

  /// Opens an existing directory rooted at `root` and caches the extent
  /// list in memory.
  Status Open(PageId root);

  /// Ensures at least `logical_pages` logical pages exist, allocating whole
  /// extents as needed.
  Status EnsureCapacity(uint64_t logical_pages);

  /// Translates a logical page index into a physical PageId.
  Result<PageId> LogicalToPhysical(uint64_t logical_index) const;

  uint64_t logical_page_capacity() const {
    return extent_firsts_.size() * pages_per_extent_;
  }
  uint32_t pages_per_extent() const { return pages_per_extent_; }
  uint64_t num_extents() const { return extent_firsts_.size(); }
  PageId root() const { return root_; }

  /// First PageId of each extent, in logical order (for dbverify's
  /// allocator-vs-catalog cross-checks).
  const std::vector<PageId>& extent_firsts() const { return extent_firsts_; }

  /// Directory meta pages (root first, then the overflow chain).
  const std::vector<PageId>& directory_pages() const {
    return directory_pages_;
  }

 private:
  /// Rewrites the on-disk directory from the in-memory extent list.
  Status PersistDirectory();

  BufferPool* pool_;
  Disk* disk_;
  PageId root_ = kInvalidPageId;
  uint32_t pages_per_extent_ = 0;
  std::vector<PageId> extent_firsts_;
  std::vector<PageId> directory_pages_;  // root first, then overflow chain
};

}  // namespace paradise
