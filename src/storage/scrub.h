// Storage scrub: a read-only consistency pass over an open StorageManager.
// Walks every physical page (verifying checksums on v2+ files), walks the
// free list detecting cycles and out-of-range links, and checks the
// manifest-level invariants (load state, pointer bounds). Used by the
// optional StorageOptions::scrub_on_open startup pass and by the dbverify
// tool (schema/db_verify.h), which layers database-level cross-checks on
// top.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/page.h"

namespace paradise {

class StorageManager;

/// Findings of a scrub pass. `issues` is empty for a consistent file; each
/// entry is a self-contained human-readable description.
struct ScrubReport {
  uint64_t pages_scanned = 0;
  uint64_t pages_corrupt = 0;
  /// Pages collected from the free-list walk, in list order.
  std::vector<PageId> free_pages;
  std::vector<std::string> issues;

  bool clean() const { return issues.empty(); }
};

/// Scrubs the storage below `storage`, which must be open. Returns non-OK
/// only when the scrub itself cannot run (e.g. storage closed); consistency
/// problems are reported through `report->issues`, so a caller can both see
/// every finding and decide severity itself.
Status ScrubStorage(StorageManager* storage, ScrubReport* report);

}  // namespace paradise
