#include "storage/io_pool.h"

#include <utility>

namespace paradise {

IoPool::IoPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

IoPool::~IoPool() { Shutdown(); }

bool IoPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void IoPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void IoPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      // Idempotent: a second call must not re-join already-joined threads.
      return;
    }
    shutdown_ = true;
    queue_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  drain_cv_.notify_all();
}

void IoPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (shutdown_) return;
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) drain_cv_.notify_all();
  }
}

}  // namespace paradise
