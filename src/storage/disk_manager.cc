#include "storage/disk_manager.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"

namespace paradise {

namespace {
std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

bool AllZero(const char* buf, size_t n) {
  return std::all_of(buf, buf + n, [](char c) { return c == 0; });
}

int64_t MicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// How many durable-chain pages one AllocatePage call unlinks for deferred
// reuse: large enough to amortize the manifest commit that makes them
// reusable, small enough to bound the page reads inside one allocation.
constexpr size_t kReuseBatch = 64;
}  // namespace

DiskManager::~DiskManager() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  // Best-effort close; errors are already reported via the Status API when
  // callers Close() explicitly.
  if (file_ != nullptr) (void)Close();
}

uint32_t DiskManager::PageCrc(PageId id, const char* buf) const {
  char encoded_id[8];
  EncodeFixed64(encoded_id, id);
  return Crc32cExtend(Crc32c(buf, page_size_), encoded_id, sizeof(encoded_id));
}

Status DiskManager::Create(const std::string& path,
                           const StorageOptions& options) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(options.Validate());
  if (file_ != nullptr) {
    return Status::InvalidArgument("DiskManager already open");
  }
  if (options.read_only) {
    return Status::InvalidArgument("cannot create a database read-only");
  }
  if (!options.allow_overwrite) {
    if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
      std::fclose(probe);
      return Status::AlreadyExists("database file exists: " + path);
    }
  }
  file_ = std::fopen(path.c_str(), "wb+");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot create", path));
  }
  path_ = path;
  page_size_ = options.page_size;
  format_version_ = options.format_version;
  if (options.metrics_enabled) {
    MetricsRegistry& reg = MetricsRegistry::Default();
    h_read_micros_ = reg.GetHistogram("disk.read_micros");
    h_write_micros_ = reg.GetHistogram("disk.write_micros");
    h_sync_micros_ = reg.GetHistogram("disk.sync_micros");
  }
  stride_ = page_header::PhysicalStride(format_version_, page_size_);
  free_list_head_ = kInvalidPageId;
  catalog_oid_ = kInvalidObjectId;
  load_state_ = page_header::kLoadCommitted;
  epoch_ = 0;
  read_only_ = false;
  dirty_since_commit_ = true;  // the fresh header must reach a first commit
  session_freed_.clear();
  fresh_free_pages_ = 0;
  pending_reuse_.clear();
  reusable_.clear();
  if (format_version_ >= page_header::kFormatManifest) {
    // Header + the two manifest slot pages. The header is immutable from
    // here on; all mutable metadata lives in the manifest.
    page_count_ = 3;
    PARADISE_RETURN_IF_ERROR(WriteHeader());
    std::vector<char> zeros(page_size_, 0);
    PARADISE_RETURN_IF_ERROR(
        WritePage(page_header::kManifestSlotPages[0], zeros.data()));
    // Commits epoch 1 into slot page 2 and fsyncs, so even a freshly created
    // empty file recovers cleanly.
    return Commit();
  }
  page_count_ = 1;  // header page
  PARADISE_RETURN_IF_ERROR(WriteHeader());
  return SyncFile();
}

Status DiskManager::Open(const std::string& path,
                         const StorageOptions& options) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(options.Validate());
  if (file_ != nullptr) {
    return Status::InvalidArgument("DiskManager already open");
  }
  read_only_ = options.read_only;
  file_ = std::fopen(path.c_str(), read_only_ ? "rb" : "rb+");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open", path));
  }
  path_ = path;
  page_size_ = options.page_size;
  if (options.metrics_enabled) {
    MetricsRegistry& reg = MetricsRegistry::Default();
    h_read_micros_ = reg.GetHistogram("disk.read_micros");
    h_write_micros_ = reg.GetHistogram("disk.write_micros");
    h_sync_micros_ = reg.GetHistogram("disk.sync_micros");
  }
  load_state_ = page_header::kLoadCommitted;
  epoch_ = 0;
  dirty_since_commit_ = false;
  session_freed_.clear();
  fresh_free_pages_ = 0;  // the whole recovered chain is durable: frozen
  pending_reuse_.clear();
  reusable_.clear();
  Status st = ReadHeader();
  if (!st.ok()) {
    std::fclose(file_);
    file_ = nullptr;
    return st;
  }
  // A crash between the data fsync and the metadata commit leaves fully
  // durable pages past the committed page count: the file was extended and
  // synced, only the commit never landed. Adopt the physical length as a
  // floor so those orphaned pages stay addressable (in-place-updated
  // structures may already reference them) and, crucially, are never handed
  // out a second time by a later allocation.
  if (std::fseek(file_, 0, SEEK_END) == 0) {
    const long end = std::ftell(file_);
    if (end > 0) {
      const uint64_t physical = static_cast<uint64_t>(end) / stride_;
      if (physical > page_count_) {
        page_count_ = physical;
        // The manifest under-counts; record the corrected count next commit.
        if (!read_only_) dirty_since_commit_ = true;
      }
    }
  }
  return Status::OK();
}

Status DiskManager::Close() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (file_ == nullptr) return Status::OK();
  // Commit current metadata (manifest on v3, header rewrite on v1/v2), then
  // release the handle. Every failure mode is propagated, but the handle is
  // released regardless, so Close() stays idempotent.
  Status st = read_only_ ? Status::OK() : Commit();
  if (st.ok() && !read_only_ && !reusable_.empty()) {
    // Staged-for-reuse pages are referenced by no durable state: their ids
    // would be lost with this process. Chain them back into the free list
    // (safe — writing a link into an unreferenced page cannot break the
    // committed chain) and commit once more so a clean shutdown leaks
    // nothing.
    while (st.ok() && !reusable_.empty()) {
      st = PushFreeListHead(reusable_.back());
      if (st.ok()) {
        reusable_.pop_back();
        ++fresh_free_pages_;
      }
    }
    if (st.ok()) st = Commit();
  }
  if (std::fclose(file_) != 0 && st.ok()) {
    st = Status::IOError(ErrnoMessage("close failed", path_));
  }
  file_ = nullptr;
  return st;
}

void DiskManager::Abandon() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fclose(file_);
  file_ = nullptr;
}

Status DiskManager::Flush() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("flush failed", path_));
  }
  return Status::OK();
}

Status DiskManager::CheckPageId(PageId id) const {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " outside file of " +
                              std::to_string(page_count_) + " pages");
  }
  return Status::OK();
}

Status DiskManager::CheckWritable() const {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  if (read_only_) {
    return Status::InvalidArgument("database opened read-only: " + path_);
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  PARADISE_RETURN_IF_ERROR(CheckPageId(id));
  const int64_t t0 = h_read_micros_ != nullptr ? MicrosNow() : 0;
  const uint64_t offset = id * stride_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fread(buf, 1, page_size_, file_) != page_size_) {
    std::clearerr(file_);
    return Status::IOError("short read of page " + std::to_string(id) +
                           " in " + path_);
  }
  if (format_version_ >= page_header::kFormatChecksummed) {
    char trailer[page_header::kPageTrailerBytes];
    if (std::fread(trailer, 1, sizeof(trailer), file_) != sizeof(trailer)) {
      std::clearerr(file_);
      return Status::IOError("short trailer read of page " +
                             std::to_string(id) + " in " + path_);
    }
    if (AllZero(trailer, sizeof(trailer))) {
      // Allocated-but-never-written page (sparse extent tail): all-zero data
      // with an all-zero trailer is accepted as an uninitialized page.
      if (!AllZero(buf, page_size_)) {
        return Status::Corruption("checksum missing on non-empty page " +
                                  std::to_string(id) + " in " + path_);
      }
    } else {
      const uint32_t stored = UnmaskCrc32c(DecodeFixed32(trailer));
      const uint32_t computed = PageCrc(id, buf);
      if (stored != computed) {
        return Status::Corruption(
            "checksum mismatch on page " + std::to_string(id) + " in " +
            path_ + " (stored " + std::to_string(stored) + ", computed " +
            std::to_string(computed) + ")");
      }
    }
  }
  ++reads_;
  if (h_read_micros_ != nullptr) {
    h_read_micros_->Record(static_cast<uint64_t>(MicrosNow() - t0));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(CheckWritable());
  PARADISE_RETURN_IF_ERROR(CheckPageId(id));
  const int64_t t0 = h_write_micros_ != nullptr ? MicrosNow() : 0;
  const uint64_t offset = id * stride_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fwrite(buf, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short write of page " + std::to_string(id) +
                           " in " + path_);
  }
  if (format_version_ >= page_header::kFormatChecksummed) {
    char trailer[page_header::kPageTrailerBytes] = {};
    EncodeFixed32(trailer, MaskCrc32c(PageCrc(id, buf)));
    if (std::fwrite(trailer, 1, sizeof(trailer), file_) != sizeof(trailer)) {
      return Status::IOError("short trailer write of page " +
                             std::to_string(id) + " in " + path_);
    }
  }
  ++writes_;
  dirty_since_commit_ = true;
  if (h_write_micros_ != nullptr) {
    h_write_micros_->Record(static_cast<uint64_t>(MicrosNow() - t0));
  }
  return Status::OK();
}

Result<PageId> DiskManager::PopFreeListHead() {
  const PageId id = free_list_head_;
  // The first 8 bytes of a free page hold the next free PageId.
  std::vector<char> buf(page_size_);
  PARADISE_RETURN_IF_ERROR(ReadPage(id, buf.data()));
  const PageId next = DecodeFixed64(buf.data());
  if (next != kInvalidPageId &&
      (next == id || next >= page_count_ ||
       next < page_header::FirstUserPage(format_version_))) {
    return Status::Corruption(
        "free list corrupted: free page " + std::to_string(id) +
        " links to invalid page " + std::to_string(next) + " in " + path_);
  }
  free_list_head_ = next;
  dirty_since_commit_ = true;
  return id;
}

Status DiskManager::PushFreeListHead(PageId id) {
  std::vector<char> buf(page_size_, 0);
  EncodeFixed64(buf.data(), free_list_head_);
  PARADISE_RETURN_IF_ERROR(WritePage(id, buf.data()));
  free_list_head_ = id;
  dirty_since_commit_ = true;
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(CheckWritable());
  const bool manifest = format_version_ >= page_header::kFormatManifest;
  // Pages freed since the last commit sit at the head of the chain and no
  // durable manifest references them: reuse them immediately. Legacy
  // formats have no crash-safe manifest to protect, so they always pop.
  if (free_list_head_ != kInvalidPageId &&
      (!manifest || fresh_free_pages_ > 0)) {
    PARADISE_ASSIGN_OR_RETURN(const PageId id, PopFreeListHead());
    if (fresh_free_pages_ > 0) --fresh_free_pages_;
    session_freed_.erase(id);
    return id;
  }
  if (!reusable_.empty()) {
    const PageId id = reusable_.back();
    reusable_.pop_back();
    session_freed_.erase(id);
    return id;
  }
  if (free_list_head_ != kInvalidPageId) {
    // Only pages the DURABLE manifest's chain references remain. Their
    // bytes are the next-links a post-crash recovery walks, so they must
    // not be handed out (and overwritten) while that manifest is live.
    // Unlink a batch without touching the pages themselves; once a commit
    // records the advanced head they become unreferenced and reusable.
    // When nothing else is awaiting commit, that commit is pure free-list
    // maintenance and can happen right here; mid-workload (metadata we
    // must not commit halfway) the pages stay staged until the caller's
    // next checkpoint and the file grows instead.
    const bool quiescent = !dirty_since_commit_ && epoch_ > 0;
    size_t staged = 0;
    while (free_list_head_ != kInvalidPageId && staged < kReuseBatch) {
      PARADISE_ASSIGN_OR_RETURN(const PageId id, PopFreeListHead());
      pending_reuse_.push_back(id);
      ++staged;
    }
    if (quiescent) {
      PARADISE_RETURN_IF_ERROR(Commit());  // promotes pending_reuse_
      const PageId id = reusable_.back();
      reusable_.pop_back();
      session_freed_.erase(id);
      return id;
    }
  }
  return AllocateContiguous(1);
}

Result<PageId> DiskManager::AllocateContiguous(uint64_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(CheckWritable());
  if (n == 0) return Status::InvalidArgument("cannot allocate 0 pages");
  const PageId first = page_count_;
  // Extend the file by writing the last new page; intermediate pages are
  // materialized lazily by the filesystem and read back as uninitialized
  // zero pages until first written.
  const uint64_t last = first + n - 1;
  page_count_ = last + 1;
  std::vector<char> zeros(page_size_, 0);
  Status st = WritePage(last, zeros.data());
  if (!st.ok()) {
    page_count_ = first;
    return st;
  }
  return first;
}

Status DiskManager::FreePage(PageId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(CheckWritable());
  PARADISE_RETURN_IF_ERROR(CheckPageId(id));
  if (id < page_header::FirstUserPage(format_version_)) {
    return Status::InvalidArgument(
        "cannot free reserved page " + std::to_string(id) +
        (id == 0 ? " (file header)" : " (commit manifest)"));
  }
  if (!session_freed_.insert(id).second) {
    return Status::Corruption("double free of page " + std::to_string(id) +
                              " in " + path_);
  }
  Status st = PushFreeListHead(id);
  if (!st.ok()) {
    session_freed_.erase(id);
    return st;
  }
  ++fresh_free_pages_;
  return Status::OK();
}

Status DiskManager::WriteHeader() {
  std::vector<char> buf(page_size_, 0);
  std::memcpy(buf.data() + page_header::kMagicOffset, page_header::kMagic,
              sizeof(page_header::kMagic));
  EncodeFixed32(buf.data() + page_header::kPageSizeOffset,
                static_cast<uint32_t>(page_size_));
  EncodeFixed64(buf.data() + page_header::kPageCountOffset, page_count_);
  EncodeFixed64(buf.data() + page_header::kFreeListOffset, free_list_head_);
  EncodeFixed64(buf.data() + page_header::kCatalogOffset, catalog_oid_);
  if (format_version_ >= page_header::kFormatChecksummed) {
    EncodeFixed32(buf.data() + page_header::kVersionOffset, format_version_);
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fwrite(buf.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("failed to write header of " + path_);
  }
  if (format_version_ >= page_header::kFormatChecksummed) {
    char trailer[page_header::kPageTrailerBytes] = {};
    EncodeFixed32(trailer, MaskCrc32c(PageCrc(0, buf.data())));
    if (std::fwrite(trailer, 1, sizeof(trailer), file_) != sizeof(trailer)) {
      return Status::IOError("failed to write header trailer of " + path_);
    }
  }
  ++writes_;
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("flush failed", path_));
  }
  return Status::OK();
}

Status DiskManager::ReadHeader() {
  // Read only the fixed-size header prefix so a page-size mismatch is
  // reported as InvalidArgument rather than a short read.
  std::vector<char> buf(page_header::kHeaderBytes);
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return Status::Corruption("database file too small: " + path_);
  }
  ++reads_;
  if (std::memcmp(buf.data() + page_header::kMagicOffset, page_header::kMagic,
                  sizeof(page_header::kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path_);
  }
  const uint32_t stored_page_size =
      DecodeFixed32(buf.data() + page_header::kPageSizeOffset);
  if (stored_page_size != page_size_) {
    return Status::InvalidArgument(
        "page size mismatch: file has " + std::to_string(stored_page_size) +
        ", options specify " + std::to_string(page_size_));
  }
  // Legacy (seed) files end their header at byte 36 with the remainder of
  // the page zeroed, so a zero version field means v1.
  const uint32_t stored_version =
      DecodeFixed32(buf.data() + page_header::kVersionOffset);
  format_version_ =
      stored_version == 0 ? page_header::kFormatLegacy : stored_version;
  if (format_version_ > page_header::kMaxSupportedFormat) {
    return Status::NotSupported("database file " + path_ +
                                " has format version " +
                                std::to_string(format_version_) +
                                "; this build supports up to version " +
                                std::to_string(
                                    page_header::kMaxSupportedFormat));
  }
  stride_ = page_header::PhysicalStride(format_version_, page_size_);
  page_count_ = DecodeFixed64(buf.data() + page_header::kPageCountOffset);
  free_list_head_ = DecodeFixed64(buf.data() + page_header::kFreeListOffset);
  catalog_oid_ = DecodeFixed64(buf.data() + page_header::kCatalogOffset);
  if (format_version_ >= page_header::kFormatChecksummed) {
    // Verify the whole header page against its trailer before trusting the
    // free list and catalog pointers.
    std::vector<char> page(page_size_);
    char trailer[page_header::kPageTrailerBytes];
    if (std::fseek(file_, 0, SEEK_SET) != 0) {
      return Status::IOError(ErrnoMessage("seek failed", path_));
    }
    if (std::fread(page.data(), 1, page_size_, file_) != page_size_ ||
        std::fread(trailer, 1, sizeof(trailer), file_) != sizeof(trailer)) {
      return Status::Corruption("database file truncated in header: " +
                                path_);
    }
    const uint32_t stored = UnmaskCrc32c(DecodeFixed32(trailer));
    const uint32_t computed = PageCrc(0, page.data());
    if (stored != computed) {
      return Status::Corruption("checksum mismatch on page 0 (header) in " +
                                path_);
    }
  }
  if (format_version_ >= page_header::kFormatManifest) {
    // On v3 the header fields beyond page size/version are a snapshot from
    // Create(); the committed manifest is authoritative.
    return LoadManifest();
  }
  return Status::OK();
}

Status DiskManager::LoadManifest() {
  namespace ph = page_header;
  struct Slot {
    bool valid = false;
    uint64_t epoch = 0;
    uint64_t page_count = 0;
    PageId free_list = kInvalidPageId;
    ObjectId catalog = kInvalidObjectId;
    uint32_t load_state = ph::kLoadCommitted;
  };
  Slot best;
  int valid_slots = 0;
  // The slots are read raw, ignoring the page trailer: a torn manifest write
  // damages the trailer too, and the record is self-validating through its
  // internal CRC. An unparseable slot is simply not a candidate — recovery
  // falls back to the other slot.
  std::vector<char> buf(page_size_);
  for (PageId sid : ph::kManifestSlotPages) {
    if (std::fseek(file_, static_cast<long>(sid * stride_), SEEK_SET) != 0) {
      continue;
    }
    if (std::fread(buf.data(), 1, page_size_, file_) != page_size_) {
      std::clearerr(file_);
      continue;
    }
    ++reads_;
    if (std::memcmp(buf.data() + ph::kManifestMagicOffset, ph::kManifestMagic,
                    sizeof(ph::kManifestMagic)) != 0) {
      continue;
    }
    const uint32_t stored =
        UnmaskCrc32c(DecodeFixed32(buf.data() + ph::kManifestCrcOffset));
    if (stored != Crc32c(buf.data(), ph::kManifestCrcOffset)) continue;
    Slot s;
    s.valid = true;
    s.epoch = DecodeFixed64(buf.data() + ph::kManifestEpochOffset);
    s.page_count = DecodeFixed64(buf.data() + ph::kManifestPageCountOffset);
    s.free_list = DecodeFixed64(buf.data() + ph::kManifestFreeListOffset);
    s.catalog = DecodeFixed64(buf.data() + ph::kManifestCatalogOffset);
    s.load_state = DecodeFixed32(buf.data() + ph::kManifestLoadStateOffset);
    ++valid_slots;
    if (!best.valid || s.epoch > best.epoch) best = s;
  }
  if (!best.valid) {
    return Status::Corruption(
        "no valid commit manifest in " + path_ +
        " (file was never committed, or both manifest slots are damaged)");
  }
  if (best.page_count < ph::FirstUserPage(ph::kFormatManifest)) {
    return Status::Corruption("manifest in " + path_ +
                              " declares implausible page count " +
                              std::to_string(best.page_count));
  }
  if (best.free_list != kInvalidPageId &&
      (best.free_list >= best.page_count ||
       best.free_list < ph::FirstUserPage(ph::kFormatManifest))) {
    return Status::Corruption("manifest in " + path_ +
                              " has free-list head " +
                              std::to_string(best.free_list) +
                              " outside the file");
  }
  epoch_ = best.epoch;
  page_count_ = best.page_count;
  free_list_head_ = best.free_list;
  catalog_oid_ = best.catalog;
  load_state_ = best.load_state;
  // A single surviving slot (fresh file, torn commit, or damaged slot) loses
  // the dual-slot redundancy; mark the session dirty so the next commit
  // rewrites the alternate slot and restores it.
  if (valid_slots < 2 && !read_only_) dirty_since_commit_ = true;
  return Status::OK();
}

Status DiskManager::CommitManifest() {
  namespace ph = page_header;
  const uint64_t next_epoch = epoch_ + 1;
  std::vector<char> buf(page_size_, 0);
  std::memcpy(buf.data() + ph::kManifestMagicOffset, ph::kManifestMagic,
              sizeof(ph::kManifestMagic));
  EncodeFixed64(buf.data() + ph::kManifestEpochOffset, next_epoch);
  EncodeFixed64(buf.data() + ph::kManifestPageCountOffset, page_count_);
  EncodeFixed64(buf.data() + ph::kManifestFreeListOffset, free_list_head_);
  EncodeFixed64(buf.data() + ph::kManifestCatalogOffset, catalog_oid_);
  EncodeFixed32(buf.data() + ph::kManifestLoadStateOffset, load_state_);
  EncodeFixed32(buf.data() + ph::kManifestCrcOffset,
                MaskCrc32c(Crc32c(buf.data(), ph::kManifestCrcOffset)));
  PARADISE_RETURN_IF_ERROR(
      WritePage(ph::ManifestSlotPage(next_epoch), buf.data()));
  epoch_ = next_epoch;
  return Status::OK();
}

Status DiskManager::SyncFile() {
  const int64_t t0 = h_sync_micros_ != nullptr ? MicrosNow() : 0;
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("flush failed", path_));
  }
  if (::fsync(fileno(file_)) != 0) {
    return Status::IOError(ErrnoMessage("fsync failed", path_));
  }
  if (h_sync_micros_ != nullptr) {
    h_sync_micros_->Record(static_cast<uint64_t>(MicrosNow() - t0));
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  if (read_only_) return Status::OK();
  return SyncFile();
}

Status DiskManager::Commit() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(CheckWritable());
  if (format_version_ >= page_header::kFormatManifest) {
    // Nothing changed since the last commit: skipping keeps a read-only
    // usage pattern (open, query, close) from churning the epoch — and
    // guarantees a refused Open() leaves the file byte-identical.
    if (!dirty_since_commit_ && epoch_ > 0) return Status::OK();
    Status st = CommitManifest();
    if (st.ok()) st = SyncFile();
    // Every page still on the chain is now (or, on failure, may be)
    // recorded by a durable manifest: its link bytes are frozen until a
    // later commit advances past it.
    fresh_free_pages_ = 0;
    if (!st.ok()) return st;
    // Pages staged by AllocatePage fell out of the chain just committed:
    // no durable state references them any more, so they may be handed
    // out and overwritten. (A crash from here on merely leaks them.)
    reusable_.insert(reusable_.end(), pending_reuse_.begin(),
                     pending_reuse_.end());
    pending_reuse_.clear();
    dirty_since_commit_ = false;
    return Status::OK();
  }
  // Legacy formats have no manifest: the header is rewritten in place,
  // which is not torn-write-safe (DESIGN.md documents this gap).
  PARADISE_RETURN_IF_ERROR(WriteHeader());
  PARADISE_RETURN_IF_ERROR(SyncFile());
  dirty_since_commit_ = false;
  return Status::OK();
}

Result<StorageOptions> ProbeStorageOptions(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open", path));
  }
  char buf[page_header::kHeaderBytes];
  const size_t got = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  if (got != sizeof(buf)) {
    return Status::Corruption("database file too small: " + path);
  }
  if (std::memcmp(buf + page_header::kMagicOffset, page_header::kMagic,
                  sizeof(page_header::kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path);
  }
  StorageOptions options;
  options.page_size = DecodeFixed32(buf + page_header::kPageSizeOffset);
  const uint32_t stored_version =
      DecodeFixed32(buf + page_header::kVersionOffset);
  options.format_version =
      stored_version == 0 ? page_header::kFormatLegacy : stored_version;
  PARADISE_RETURN_IF_ERROR(
      options.Validate().WithContext("probing header of " + path));
  return options;
}

}  // namespace paradise
