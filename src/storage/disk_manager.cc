#include "storage/disk_manager.h"

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/coding.h"

namespace paradise {

namespace {
std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}
}  // namespace

DiskManager::~DiskManager() {
  // Best-effort close; errors are already reported via the Status API when
  // callers Close() explicitly.
  if (file_ != nullptr) (void)Close();
}

Status DiskManager::Create(const std::string& path,
                           const StorageOptions& options) {
  PARADISE_RETURN_IF_ERROR(options.Validate());
  if (file_ != nullptr) {
    return Status::InvalidArgument("DiskManager already open");
  }
  if (!options.allow_overwrite) {
    if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
      std::fclose(probe);
      return Status::AlreadyExists("database file exists: " + path);
    }
  }
  file_ = std::fopen(path.c_str(), "wb+");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot create", path));
  }
  path_ = path;
  page_size_ = options.page_size;
  page_count_ = 1;  // header page
  free_list_head_ = kInvalidPageId;
  catalog_oid_ = kInvalidObjectId;
  return WriteHeader();
}

Status DiskManager::Open(const std::string& path,
                         const StorageOptions& options) {
  PARADISE_RETURN_IF_ERROR(options.Validate());
  if (file_ != nullptr) {
    return Status::InvalidArgument("DiskManager already open");
  }
  file_ = std::fopen(path.c_str(), "rb+");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open", path));
  }
  path_ = path;
  page_size_ = options.page_size;
  Status st = ReadHeader();
  if (!st.ok()) {
    std::fclose(file_);
    file_ = nullptr;
    return st;
  }
  return Status::OK();
}

Status DiskManager::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = WriteHeader();
  if (std::fclose(file_) != 0 && st.ok()) {
    st = Status::IOError(ErrnoMessage("close failed", path_));
  }
  file_ = nullptr;
  return st;
}

Status DiskManager::CheckPageId(PageId id) const {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " outside file of " +
                              std::to_string(page_count_) + " pages");
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  PARADISE_RETURN_IF_ERROR(CheckPageId(id));
  const uint64_t offset = id * page_size_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fread(buf, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short read of page " + std::to_string(id) +
                           " in " + path_);
  }
  ++reads_;
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  PARADISE_RETURN_IF_ERROR(CheckPageId(id));
  const uint64_t offset = id * page_size_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fwrite(buf, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short write of page " + std::to_string(id) +
                           " in " + path_);
  }
  ++writes_;
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  if (free_list_head_ != kInvalidPageId) {
    const PageId id = free_list_head_;
    // The first 8 bytes of a free page hold the next free PageId.
    std::vector<char> buf(page_size_);
    PARADISE_RETURN_IF_ERROR(ReadPage(id, buf.data()));
    free_list_head_ = DecodeFixed64(buf.data());
    return id;
  }
  return AllocateContiguous(1);
}

Result<PageId> DiskManager::AllocateContiguous(uint64_t n) {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  if (n == 0) return Status::InvalidArgument("cannot allocate 0 pages");
  const PageId first = page_count_;
  // Extend the file by writing the last new page; intermediate pages are
  // materialized lazily by the filesystem.
  std::vector<char> zeros(page_size_, 0);
  const uint64_t last = first + n - 1;
  const uint64_t offset = last * page_size_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fwrite(zeros.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("failed to extend file " + path_);
  }
  ++writes_;
  page_count_ = last + 1;
  return first;
}

Status DiskManager::FreePage(PageId id) {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  PARADISE_RETURN_IF_ERROR(CheckPageId(id));
  if (id == 0) return Status::InvalidArgument("cannot free the header page");
  std::vector<char> buf(page_size_, 0);
  EncodeFixed64(buf.data(), free_list_head_);
  PARADISE_RETURN_IF_ERROR(WritePage(id, buf.data()));
  free_list_head_ = id;
  return Status::OK();
}

Status DiskManager::WriteHeader() {
  std::vector<char> buf(page_size_, 0);
  std::memcpy(buf.data() + page_header::kMagicOffset, page_header::kMagic,
              sizeof(page_header::kMagic));
  EncodeFixed32(buf.data() + page_header::kPageSizeOffset,
                static_cast<uint32_t>(page_size_));
  EncodeFixed64(buf.data() + page_header::kPageCountOffset, page_count_);
  EncodeFixed64(buf.data() + page_header::kFreeListOffset, free_list_head_);
  EncodeFixed64(buf.data() + page_header::kCatalogOffset, catalog_oid_);
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fwrite(buf.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("failed to write header of " + path_);
  }
  ++writes_;
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("flush failed", path_));
  }
  return Status::OK();
}

Status DiskManager::ReadHeader() {
  // Read only the fixed-size header prefix so a page-size mismatch is
  // reported as InvalidArgument rather than a short read.
  std::vector<char> buf(page_header::kHeaderBytes);
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return Status::Corruption("database file too small: " + path_);
  }
  ++reads_;
  if (std::memcmp(buf.data() + page_header::kMagicOffset, page_header::kMagic,
                  sizeof(page_header::kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path_);
  }
  const uint32_t stored_page_size =
      DecodeFixed32(buf.data() + page_header::kPageSizeOffset);
  if (stored_page_size != page_size_) {
    return Status::InvalidArgument(
        "page size mismatch: file has " + std::to_string(stored_page_size) +
        ", options specify " + std::to_string(page_size_));
  }
  page_count_ = DecodeFixed64(buf.data() + page_header::kPageCountOffset);
  free_list_head_ = DecodeFixed64(buf.data() + page_header::kFreeListOffset);
  catalog_oid_ = DecodeFixed64(buf.data() + page_header::kCatalogOffset);
  return Status::OK();
}

Status DiskManager::Sync() {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  return WriteHeader();
}

}  // namespace paradise
