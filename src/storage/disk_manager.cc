#include "storage/disk_manager.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"

namespace paradise {

namespace {
std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

bool AllZero(const char* buf, size_t n) {
  return std::all_of(buf, buf + n, [](char c) { return c == 0; });
}
}  // namespace

DiskManager::~DiskManager() {
  // Best-effort close; errors are already reported via the Status API when
  // callers Close() explicitly.
  if (file_ != nullptr) (void)Close();
}

uint32_t DiskManager::PageCrc(PageId id, const char* buf) const {
  char encoded_id[8];
  EncodeFixed64(encoded_id, id);
  return Crc32cExtend(Crc32c(buf, page_size_), encoded_id, sizeof(encoded_id));
}

Status DiskManager::Create(const std::string& path,
                           const StorageOptions& options) {
  PARADISE_RETURN_IF_ERROR(options.Validate());
  if (file_ != nullptr) {
    return Status::InvalidArgument("DiskManager already open");
  }
  if (!options.allow_overwrite) {
    if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
      std::fclose(probe);
      return Status::AlreadyExists("database file exists: " + path);
    }
  }
  file_ = std::fopen(path.c_str(), "wb+");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot create", path));
  }
  path_ = path;
  page_size_ = options.page_size;
  format_version_ = options.format_version;
  stride_ = page_header::PhysicalStride(format_version_, page_size_);
  page_count_ = 1;  // header page
  free_list_head_ = kInvalidPageId;
  catalog_oid_ = kInvalidObjectId;
  return WriteHeader();
}

Status DiskManager::Open(const std::string& path,
                         const StorageOptions& options) {
  PARADISE_RETURN_IF_ERROR(options.Validate());
  if (file_ != nullptr) {
    return Status::InvalidArgument("DiskManager already open");
  }
  file_ = std::fopen(path.c_str(), "rb+");
  if (file_ == nullptr) {
    return Status::IOError(ErrnoMessage("cannot open", path));
  }
  path_ = path;
  page_size_ = options.page_size;
  Status st = ReadHeader();
  if (!st.ok()) {
    std::fclose(file_);
    file_ = nullptr;
    return st;
  }
  return Status::OK();
}

Status DiskManager::Close() {
  if (file_ == nullptr) return Status::OK();
  // Propagate every failure mode: header write, stream flush, and the final
  // fclose (which may surface deferred write errors). The file handle is
  // released regardless, so Close() stays idempotent.
  Status st = WriteHeader();
  if (std::fflush(file_) != 0 && st.ok()) {
    st = Status::IOError(ErrnoMessage("flush failed closing", path_));
  }
  if (std::fclose(file_) != 0 && st.ok()) {
    st = Status::IOError(ErrnoMessage("close failed", path_));
  }
  file_ = nullptr;
  return st;
}

Status DiskManager::Flush() {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("flush failed", path_));
  }
  return Status::OK();
}

Status DiskManager::CheckPageId(PageId id) const {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::OutOfRange("page id " + std::to_string(id) +
                              " outside file of " +
                              std::to_string(page_count_) + " pages");
  }
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* buf) {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  PARADISE_RETURN_IF_ERROR(CheckPageId(id));
  const uint64_t offset = id * stride_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fread(buf, 1, page_size_, file_) != page_size_) {
    std::clearerr(file_);
    return Status::IOError("short read of page " + std::to_string(id) +
                           " in " + path_);
  }
  if (format_version_ >= page_header::kFormatChecksummed) {
    char trailer[page_header::kPageTrailerBytes];
    if (std::fread(trailer, 1, sizeof(trailer), file_) != sizeof(trailer)) {
      std::clearerr(file_);
      return Status::IOError("short trailer read of page " +
                             std::to_string(id) + " in " + path_);
    }
    if (AllZero(trailer, sizeof(trailer))) {
      // Allocated-but-never-written page (sparse extent tail): all-zero data
      // with an all-zero trailer is accepted as an uninitialized page.
      if (!AllZero(buf, page_size_)) {
        return Status::Corruption("checksum missing on non-empty page " +
                                  std::to_string(id) + " in " + path_);
      }
    } else {
      const uint32_t stored = UnmaskCrc32c(DecodeFixed32(trailer));
      const uint32_t computed = PageCrc(id, buf);
      if (stored != computed) {
        return Status::Corruption(
            "checksum mismatch on page " + std::to_string(id) + " in " +
            path_ + " (stored " + std::to_string(stored) + ", computed " +
            std::to_string(computed) + ")");
      }
    }
  }
  ++reads_;
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* buf) {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  PARADISE_RETURN_IF_ERROR(CheckPageId(id));
  const uint64_t offset = id * stride_;
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fwrite(buf, 1, page_size_, file_) != page_size_) {
    return Status::IOError("short write of page " + std::to_string(id) +
                           " in " + path_);
  }
  if (format_version_ >= page_header::kFormatChecksummed) {
    char trailer[page_header::kPageTrailerBytes] = {};
    EncodeFixed32(trailer, MaskCrc32c(PageCrc(id, buf)));
    if (std::fwrite(trailer, 1, sizeof(trailer), file_) != sizeof(trailer)) {
      return Status::IOError("short trailer write of page " +
                             std::to_string(id) + " in " + path_);
    }
  }
  ++writes_;
  return Status::OK();
}

Result<PageId> DiskManager::AllocatePage() {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  if (free_list_head_ != kInvalidPageId) {
    const PageId id = free_list_head_;
    // The first 8 bytes of a free page hold the next free PageId.
    std::vector<char> buf(page_size_);
    PARADISE_RETURN_IF_ERROR(ReadPage(id, buf.data()));
    free_list_head_ = DecodeFixed64(buf.data());
    return id;
  }
  return AllocateContiguous(1);
}

Result<PageId> DiskManager::AllocateContiguous(uint64_t n) {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  if (n == 0) return Status::InvalidArgument("cannot allocate 0 pages");
  const PageId first = page_count_;
  // Extend the file by writing the last new page; intermediate pages are
  // materialized lazily by the filesystem and read back as uninitialized
  // zero pages until first written.
  const uint64_t last = first + n - 1;
  page_count_ = last + 1;
  std::vector<char> zeros(page_size_, 0);
  Status st = WritePage(last, zeros.data());
  if (!st.ok()) {
    page_count_ = first;
    return st;
  }
  return first;
}

Status DiskManager::FreePage(PageId id) {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  PARADISE_RETURN_IF_ERROR(CheckPageId(id));
  if (id == 0) return Status::InvalidArgument("cannot free the header page");
  std::vector<char> buf(page_size_, 0);
  EncodeFixed64(buf.data(), free_list_head_);
  PARADISE_RETURN_IF_ERROR(WritePage(id, buf.data()));
  free_list_head_ = id;
  return Status::OK();
}

Status DiskManager::WriteHeader() {
  std::vector<char> buf(page_size_, 0);
  std::memcpy(buf.data() + page_header::kMagicOffset, page_header::kMagic,
              sizeof(page_header::kMagic));
  EncodeFixed32(buf.data() + page_header::kPageSizeOffset,
                static_cast<uint32_t>(page_size_));
  EncodeFixed64(buf.data() + page_header::kPageCountOffset, page_count_);
  EncodeFixed64(buf.data() + page_header::kFreeListOffset, free_list_head_);
  EncodeFixed64(buf.data() + page_header::kCatalogOffset, catalog_oid_);
  if (format_version_ >= page_header::kFormatChecksummed) {
    EncodeFixed32(buf.data() + page_header::kVersionOffset, format_version_);
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fwrite(buf.data(), 1, page_size_, file_) != page_size_) {
    return Status::IOError("failed to write header of " + path_);
  }
  if (format_version_ >= page_header::kFormatChecksummed) {
    char trailer[page_header::kPageTrailerBytes] = {};
    EncodeFixed32(trailer, MaskCrc32c(PageCrc(0, buf.data())));
    if (std::fwrite(trailer, 1, sizeof(trailer), file_) != sizeof(trailer)) {
      return Status::IOError("failed to write header trailer of " + path_);
    }
  }
  ++writes_;
  if (std::fflush(file_) != 0) {
    return Status::IOError(ErrnoMessage("flush failed", path_));
  }
  return Status::OK();
}

Status DiskManager::ReadHeader() {
  // Read only the fixed-size header prefix so a page-size mismatch is
  // reported as InvalidArgument rather than a short read.
  std::vector<char> buf(page_header::kHeaderBytes);
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return Status::IOError(ErrnoMessage("seek failed", path_));
  }
  if (std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return Status::Corruption("database file too small: " + path_);
  }
  ++reads_;
  if (std::memcmp(buf.data() + page_header::kMagicOffset, page_header::kMagic,
                  sizeof(page_header::kMagic)) != 0) {
    return Status::Corruption("bad magic in " + path_);
  }
  const uint32_t stored_page_size =
      DecodeFixed32(buf.data() + page_header::kPageSizeOffset);
  if (stored_page_size != page_size_) {
    return Status::InvalidArgument(
        "page size mismatch: file has " + std::to_string(stored_page_size) +
        ", options specify " + std::to_string(page_size_));
  }
  // Legacy (seed) files end their header at byte 36 with the remainder of
  // the page zeroed, so a zero version field means v1.
  const uint32_t stored_version =
      DecodeFixed32(buf.data() + page_header::kVersionOffset);
  format_version_ =
      stored_version == 0 ? page_header::kFormatLegacy : stored_version;
  if (format_version_ > page_header::kFormatChecksummed) {
    return Status::NotSupported("database file " + path_ +
                                " has format version " +
                                std::to_string(format_version_) +
                                "; this build supports up to version " +
                                std::to_string(
                                    page_header::kFormatChecksummed));
  }
  stride_ = page_header::PhysicalStride(format_version_, page_size_);
  page_count_ = DecodeFixed64(buf.data() + page_header::kPageCountOffset);
  free_list_head_ = DecodeFixed64(buf.data() + page_header::kFreeListOffset);
  catalog_oid_ = DecodeFixed64(buf.data() + page_header::kCatalogOffset);
  if (format_version_ >= page_header::kFormatChecksummed) {
    // Verify the whole header page against its trailer before trusting the
    // free list and catalog pointers.
    std::vector<char> page(page_size_);
    char trailer[page_header::kPageTrailerBytes];
    if (std::fseek(file_, 0, SEEK_SET) != 0) {
      return Status::IOError(ErrnoMessage("seek failed", path_));
    }
    if (std::fread(page.data(), 1, page_size_, file_) != page_size_ ||
        std::fread(trailer, 1, sizeof(trailer), file_) != sizeof(trailer)) {
      return Status::Corruption("database file truncated in header: " +
                                path_);
    }
    const uint32_t stored = UnmaskCrc32c(DecodeFixed32(trailer));
    const uint32_t computed = PageCrc(0, page.data());
    if (stored != computed) {
      return Status::Corruption("checksum mismatch on page 0 (header) in " +
                                path_);
    }
  }
  return Status::OK();
}

Status DiskManager::Sync() {
  if (file_ == nullptr) return Status::InvalidArgument("DiskManager not open");
  return WriteHeader();
}

}  // namespace paradise
