#include "storage/fault_injection.h"

#include <cstdio>
#include <utility>

namespace paradise {

FaultInjectingDiskManager::FaultInjectingDiskManager(
    std::unique_ptr<Disk> inner, FaultInjectionOptions faults)
    : inner_(std::move(inner)), faults_(faults), rng_(faults.seed) {}

void FaultInjectingDiskManager::Arm(const FaultInjectionOptions& faults) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  faults_ = faults;
  rng_ = Random(faults.seed);
  reads_seen_ = 0;
  writes_seen_ = 0;
  ops_seen_ = 0;
  syncs_seen_ = 0;
  injected_ = 0;
  power_lost_ = false;
  preimages_.clear();
  op_log_.clear();
}

Status FaultInjectingDiskManager::PowerLossError() const {
  return Status::IOError(
      "simulated power loss" +
      (inner_->path().empty() ? std::string() : " on " + inner_->path()));
}

Status FaultInjectingDiskManager::GateOp() {
  if (power_lost_) return PowerLossError();
  if (faults_.power_loss_after_ops != 0 &&
      ops_seen_ >= faults_.power_loss_after_ops) {
    SimulatePowerLoss();
    return PowerLossError();
  }
  return Status::OK();
}

void FaultInjectingDiskManager::RecordOp(std::string op) {
  if (faults_.record_ops) op_log_.push_back(std::move(op));
}

void FaultInjectingDiskManager::CountInjected() {
  ++injected_;
  if (m_injected_ != nullptr) m_injected_->Increment();
}

Status FaultInjectingDiskManager::Create(const std::string& path,
                                         const StorageOptions& options) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (power_lost_) return PowerLossError();
  if (options.metrics_enabled) {
    m_injected_ = MetricsRegistry::Default().GetCounter("faults.injected");
  }
  return inner_->Create(path, options);
}

Status FaultInjectingDiskManager::Open(const std::string& path,
                                       const StorageOptions& options) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (power_lost_) return PowerLossError();
  if (options.metrics_enabled) {
    m_injected_ = MetricsRegistry::Default().GetCounter("faults.injected");
  }
  return inner_->Open(path, options);
}

Status FaultInjectingDiskManager::Close() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (power_lost_) {
    // A dead machine cannot run the commit protocol: release the handle
    // without committing so the file keeps exactly its crash-time state.
    inner_->Abandon();
    return PowerLossError();
  }
  const bool inject = faults_.fail_on_close && Armed();
  Status st = inner_->Close();
  if (st.ok() && inject) {
    CountInjected();
    return Status::IOError("injected write failure flushing header of " +
                           (path().empty() ? std::string("database file")
                                           : path()));
  }
  return st;
}

void FaultInjectingDiskManager::Abandon() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  preimages_.clear();
  inner_->Abandon();
}

Status FaultInjectingDiskManager::Flush() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(GateOp());
  ++ops_seen_;
  RecordOp("flush");
  // fflush moves data into OS buffers only — it is NOT a durability barrier,
  // so pre-images survive it and a power loss still rolls the writes back.
  return inner_->Flush();
}

Status FaultInjectingDiskManager::Sync() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(GateOp());
  ++ops_seen_;
  ++syncs_seen_;
  RecordOp("sync");
  if (faults_.fail_nth_sync != 0 && syncs_seen_ == faults_.fail_nth_sync &&
      Armed()) {
    CountInjected();
    return Status::IOError("injected fsync failure on " + path());
  }
  Status st = inner_->Sync();
  if (st.ok()) preimages_.clear();  // data reached stable storage
  return st;
}

Status FaultInjectingDiskManager::Commit() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(GateOp());
  ++ops_seen_;
  ++syncs_seen_;
  RecordOp("commit");
  if (faults_.fail_nth_sync != 0 && syncs_seen_ == faults_.fail_nth_sync &&
      Armed()) {
    CountInjected();
    return Status::IOError("injected fsync failure on " + path());
  }
  Status st = inner_->Commit();
  if (st.ok()) preimages_.clear();  // manifest and data are durable
  return st;
}

Status FaultInjectingDiskManager::ReadPage(PageId id, char* buf) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(GateOp());
  ++reads_seen_;
  if (faults_.fail_nth_read != 0 && reads_seen_ == faults_.fail_nth_read &&
      Armed()) {
    CountInjected();
    return Status::IOError("injected read fault on page " +
                           std::to_string(id));
  }
  if (faults_.flip_bit_on_nth_read != 0 &&
      reads_seen_ == faults_.flip_bit_on_nth_read && Armed()) {
    CountInjected();
    PARADISE_RETURN_IF_ERROR(
        FlipBitOnDisk(id, rng_.Uniform(8 * inner_->page_size())));
  }
  if (Armed() && InRange(id)) {
    if (faults_.read_error_probability > 0.0 &&
        rng_.Bernoulli(faults_.read_error_probability)) {
      CountInjected();
      return Status::IOError("injected read fault on page " +
                             std::to_string(id));
    }
    if (faults_.read_bit_flip_probability > 0.0 &&
        rng_.Bernoulli(faults_.read_bit_flip_probability)) {
      CountInjected();
      PARADISE_RETURN_IF_ERROR(
          FlipBitOnDisk(id, rng_.Uniform(8 * inner_->page_size())));
    }
  }
  return inner_->ReadPage(id, buf);
}

Status FaultInjectingDiskManager::WritePage(PageId id, const char* buf) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(GateOp());
  ++ops_seen_;
  ++writes_seen_;
  RecordOp("write:" + std::to_string(id));
  PARADISE_RETURN_IF_ERROR(CapturePreimage(id));
  if (faults_.fail_nth_write != 0 && writes_seen_ == faults_.fail_nth_write &&
      Armed()) {
    CountInjected();
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  if (faults_.torn_write_on_nth_write != 0 &&
      writes_seen_ == faults_.torn_write_on_nth_write && Armed()) {
    CountInjected();
    return TornWrite(id, buf);
  }
  if (Armed() && InRange(id) && faults_.write_error_probability > 0.0 &&
      rng_.Bernoulli(faults_.write_error_probability)) {
    CountInjected();
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  return inner_->WritePage(id, buf);
}

Result<PageId> FaultInjectingDiskManager::AllocatePage() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(GateOp());
  ++ops_seen_;
  RecordOp("alloc");
  return inner_->AllocatePage();
}

Result<PageId> FaultInjectingDiskManager::AllocateContiguous(uint64_t n) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(GateOp());
  ++ops_seen_;
  RecordOp("alloc_contig:" + std::to_string(n));
  return inner_->AllocateContiguous(n);
}

Status FaultInjectingDiskManager::FreePage(PageId id) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  PARADISE_RETURN_IF_ERROR(GateOp());
  ++ops_seen_;
  RecordOp("free:" + std::to_string(id));
  PARADISE_RETURN_IF_ERROR(CapturePreimage(id));
  return inner_->FreePage(id);
}

Status FaultInjectingDiskManager::CapturePreimage(PageId id) {
  if (faults_.power_loss_after_ops == 0 || power_lost_) return Status::OK();
  if (preimages_.count(id) != 0) return Status::OK();
  if (!inner_->is_open()) return Status::OK();
  // Push the inner manager's buffered writes out so the raw read below sees
  // the page's real current bytes, trailer included.
  PARADISE_RETURN_IF_ERROR(inner_->Flush());
  const uint64_t offset = inner_->PhysicalPageOffset(id);
  const uint64_t stride =
      inner_->PhysicalPageOffset(1) - inner_->PhysicalPageOffset(0);
  std::string bytes(stride, '\0');
  std::FILE* f = std::fopen(inner_->path().c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("fault injector: cannot open " + inner_->path());
  }
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) == 0) {
    // A short read means the page lies (partly) beyond EOF — a fresh
    // allocation; the zero fill stands in for bytes that did not yet exist.
    (void)std::fread(bytes.data(), 1, bytes.size(), f);
  }
  std::fclose(f);
  preimages_.emplace(id, std::move(bytes));
  return Status::OK();
}

void FaultInjectingDiskManager::SimulatePowerLoss() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (power_lost_) return;
  power_lost_ = true;
  CountInjected();
  RecordOp("power_loss");
  if (inner_->is_open() && !preimages_.empty()) {
    // Flush the inner manager's stdio buffers first so none of its pending
    // writes can land on top of the rollback below.
    (void)inner_->Flush();
    if (std::FILE* f = std::fopen(inner_->path().c_str(), "rb+")) {
      for (const auto& [id, bytes] : preimages_) {
        if (std::fseek(f, static_cast<long>(inner_->PhysicalPageOffset(id)),
                       SEEK_SET) == 0) {
          (void)std::fwrite(bytes.data(), 1, bytes.size(), f);
        }
      }
      std::fflush(f);
      std::fclose(f);
    }
  }
  preimages_.clear();
}

Status FaultInjectingDiskManager::FlipBitOnDisk(PageId id,
                                                uint64_t bit_index) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!inner_->is_open()) {
    return Status::InvalidArgument("fault injector: disk not open");
  }
  if (bit_index >= 8 * inner_->page_size()) {
    return Status::InvalidArgument("bit index beyond page");
  }
  // Push the inner manager's buffered writes out first so the direct file
  // access below sees (and keeps) current bytes.
  PARADISE_RETURN_IF_ERROR(inner_->Flush());
  std::FILE* f = std::fopen(inner_->path().c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("fault injector: cannot open " + inner_->path());
  }
  const uint64_t offset =
      inner_->PhysicalPageOffset(id) + bit_index / 8;
  char byte = 0;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(&byte, 1, 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("fault injector: cannot read byte to corrupt");
  }
  byte = static_cast<char>(byte ^ (1u << (bit_index % 8)));
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(&byte, 1, 1, f) != 1 || std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IOError("fault injector: cannot write corrupted byte");
  }
  std::fclose(f);
  return Status::OK();
}

Status FaultInjectingDiskManager::TornWrite(PageId id, const char* buf) {
  PARADISE_RETURN_IF_ERROR(inner_->Flush());
  std::FILE* f = std::fopen(inner_->path().c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("fault injector: cannot open " + inner_->path());
  }
  const uint64_t offset = inner_->PhysicalPageOffset(id);
  const size_t half = inner_->page_size() / 2;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(buf, 1, half, f) != half || std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IOError("fault injector: torn write failed outright");
  }
  std::fclose(f);
  // Report success: a torn write is silent at write time and only detectable
  // later, by checksum verification on read.
  return Status::OK();
}

}  // namespace paradise
