#include "storage/fault_injection.h"

#include <cstdio>

namespace paradise {

FaultInjectingDiskManager::FaultInjectingDiskManager(
    std::unique_ptr<Disk> inner, FaultInjectionOptions faults)
    : inner_(std::move(inner)), faults_(faults), rng_(faults.seed) {}

void FaultInjectingDiskManager::Arm(const FaultInjectionOptions& faults) {
  faults_ = faults;
  rng_ = Random(faults.seed);
  reads_seen_ = 0;
  writes_seen_ = 0;
  injected_ = 0;
}

Status FaultInjectingDiskManager::Create(const std::string& path,
                                         const StorageOptions& options) {
  return inner_->Create(path, options);
}

Status FaultInjectingDiskManager::Open(const std::string& path,
                                       const StorageOptions& options) {
  return inner_->Open(path, options);
}

Status FaultInjectingDiskManager::Close() {
  const bool inject = faults_.fail_on_close && Armed();
  Status st = inner_->Close();
  if (st.ok() && inject) {
    ++injected_;
    return Status::IOError("injected write failure flushing header of " +
                           (path().empty() ? std::string("database file")
                                           : path()));
  }
  return st;
}

Status FaultInjectingDiskManager::Flush() { return inner_->Flush(); }

Status FaultInjectingDiskManager::ReadPage(PageId id, char* buf) {
  ++reads_seen_;
  if (faults_.fail_nth_read != 0 && reads_seen_ == faults_.fail_nth_read &&
      Armed()) {
    ++injected_;
    return Status::IOError("injected read fault on page " +
                           std::to_string(id));
  }
  if (faults_.flip_bit_on_nth_read != 0 &&
      reads_seen_ == faults_.flip_bit_on_nth_read && Armed()) {
    ++injected_;
    PARADISE_RETURN_IF_ERROR(
        FlipBitOnDisk(id, rng_.Uniform(8 * inner_->page_size())));
  }
  if (Armed() && InRange(id)) {
    if (faults_.read_error_probability > 0.0 &&
        rng_.Bernoulli(faults_.read_error_probability)) {
      ++injected_;
      return Status::IOError("injected read fault on page " +
                             std::to_string(id));
    }
    if (faults_.read_bit_flip_probability > 0.0 &&
        rng_.Bernoulli(faults_.read_bit_flip_probability)) {
      ++injected_;
      PARADISE_RETURN_IF_ERROR(
          FlipBitOnDisk(id, rng_.Uniform(8 * inner_->page_size())));
    }
  }
  return inner_->ReadPage(id, buf);
}

Status FaultInjectingDiskManager::WritePage(PageId id, const char* buf) {
  ++writes_seen_;
  if (faults_.fail_nth_write != 0 && writes_seen_ == faults_.fail_nth_write &&
      Armed()) {
    ++injected_;
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  if (faults_.torn_write_on_nth_write != 0 &&
      writes_seen_ == faults_.torn_write_on_nth_write && Armed()) {
    ++injected_;
    return TornWrite(id, buf);
  }
  if (Armed() && InRange(id) && faults_.write_error_probability > 0.0 &&
      rng_.Bernoulli(faults_.write_error_probability)) {
    ++injected_;
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  return inner_->WritePage(id, buf);
}

Status FaultInjectingDiskManager::FlipBitOnDisk(PageId id,
                                                uint64_t bit_index) {
  if (!inner_->is_open()) {
    return Status::InvalidArgument("fault injector: disk not open");
  }
  if (bit_index >= 8 * inner_->page_size()) {
    return Status::InvalidArgument("bit index beyond page");
  }
  // Push the inner manager's buffered writes out first so the direct file
  // access below sees (and keeps) current bytes.
  PARADISE_RETURN_IF_ERROR(inner_->Flush());
  std::FILE* f = std::fopen(inner_->path().c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("fault injector: cannot open " + inner_->path());
  }
  const uint64_t offset =
      inner_->PhysicalPageOffset(id) + bit_index / 8;
  char byte = 0;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fread(&byte, 1, 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("fault injector: cannot read byte to corrupt");
  }
  byte = static_cast<char>(byte ^ (1u << (bit_index % 8)));
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(&byte, 1, 1, f) != 1 || std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IOError("fault injector: cannot write corrupted byte");
  }
  std::fclose(f);
  return Status::OK();
}

Status FaultInjectingDiskManager::TornWrite(PageId id, const char* buf) {
  PARADISE_RETURN_IF_ERROR(inner_->Flush());
  std::FILE* f = std::fopen(inner_->path().c_str(), "rb+");
  if (f == nullptr) {
    return Status::IOError("fault injector: cannot open " + inner_->path());
  }
  const uint64_t offset = inner_->PhysicalPageOffset(id);
  const size_t half = inner_->page_size() / 2;
  if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0 ||
      std::fwrite(buf, 1, half, f) != half || std::fflush(f) != 0) {
    std::fclose(f);
    return Status::IOError("fault injector: torn write failed outright");
  }
  std::fclose(f);
  // Report success: a torn write is silent at write time and only detectable
  // later, by checksum verification on read.
  return Status::OK();
}

}  // namespace paradise
