#include "storage/scrub.h"

#include <unordered_set>
#include <vector>

#include "common/coding.h"
#include "storage/disk_manager.h"
#include "storage/storage_manager.h"

namespace paradise {

Status ScrubStorage(StorageManager* storage, ScrubReport* report) {
  *report = ScrubReport{};
  if (storage == nullptr || !storage->is_open()) {
    return Status::InvalidArgument("scrub requires an open storage manager");
  }
  Disk* disk = storage->disk();
  const uint64_t page_count = disk->page_count();
  const PageId first_user =
      page_header::FirstUserPage(disk->format_version());
  std::vector<char> buf(disk->page_size());

  // Pass 1: every page must read back (checksum-clean on v2+). The header
  // (page 0) was already validated at Open; manifest slots are exempt from
  // page checksums (they are self-validating and torn slots are legal), so
  // the walk starts at the first user page.
  for (PageId id = first_user; id < page_count; ++id) {
    ++report->pages_scanned;
    Status st = disk->ReadPage(id, buf.data());
    if (!st.ok()) {
      ++report->pages_corrupt;
      report->issues.push_back(st.ToString());
    }
  }

  // Pass 2: free-list walk. Detects out-of-range links and cycles; collects
  // the free set for cross-checks against structures that claim pages.
  std::unordered_set<PageId> seen;
  PageId next = disk->free_list_head();
  while (next != kInvalidPageId) {
    if (next < first_user || next >= page_count) {
      report->issues.push_back("free list links to invalid page " +
                               std::to_string(next));
      break;
    }
    if (!seen.insert(next).second) {
      report->issues.push_back("free list cycles back to page " +
                               std::to_string(next));
      break;
    }
    report->free_pages.push_back(next);
    Status st = disk->ReadPage(next, buf.data());
    if (!st.ok()) {
      report->issues.push_back("free page " + std::to_string(next) +
                               " unreadable: " + st.ToString());
      break;
    }
    next = DecodeFixed64(buf.data());
  }

  // Pass 3: manifest-level invariants.
  if (disk->load_state() == page_header::kLoadBuilding) {
    report->issues.push_back(
        "incomplete load: the file is durably marked mid-load and was never "
        "committed; rebuild it from the source data");
  }
  const ObjectId catalog_oid = disk->catalog_oid();
  if (catalog_oid != kInvalidObjectId &&
      (catalog_oid < first_user || catalog_oid >= page_count)) {
    report->issues.push_back("catalog object id " +
                             std::to_string(catalog_oid) +
                             " lies outside the file");
  }
  return Status::OK();
}

}  // namespace paradise
