#include "storage/storage_manager.h"

#include "common/coding.h"

namespace paradise {

StorageManager::~StorageManager() {
  if (is_open()) (void)Close();
}

std::unique_ptr<Disk> StorageManager::MakeDisk() const {
  std::unique_ptr<Disk> disk = std::make_unique<DiskManager>();
  if (options_.wrap_disk) disk = options_.wrap_disk(std::move(disk));
  return disk;
}

Status StorageManager::Create(const std::string& path,
                              const StorageOptions& options) {
  if (is_open()) return Status::InvalidArgument("StorageManager already open");
  options_ = options;
  disk_ = MakeDisk();
  PARADISE_RETURN_IF_ERROR(disk_->Create(path, options));
  pool_ = std::make_unique<BufferPool>(disk_.get(), options);
  objects_ = std::make_unique<LargeObjectStore>(pool_.get());
  catalog_.clear();
  catalog_dirty_ = false;
  return Status::OK();
}

Status StorageManager::Open(const std::string& path,
                            const StorageOptions& options) {
  if (is_open()) return Status::InvalidArgument("StorageManager already open");
  options_ = options;
  disk_ = MakeDisk();
  PARADISE_RETURN_IF_ERROR(disk_->Open(path, options));
  pool_ = std::make_unique<BufferPool>(disk_.get(), options);
  objects_ = std::make_unique<LargeObjectStore>(pool_.get());
  return LoadCatalog();
}

Status StorageManager::Close() {
  if (!is_open()) return Status::OK();
  // Even when persisting fails, the file handle must still be released —
  // otherwise a fault during shutdown leaks the descriptor and leaves the
  // manager wedged in the "open" state. First error wins.
  Status st = PersistCatalog();
  if (st.ok()) st = pool_->FlushAll();
  Status close_st = disk_->Close();
  return st.ok() ? close_st : st;
}

Status StorageManager::SetRoot(const std::string& name, uint64_t value) {
  catalog_[name] = value;
  catalog_dirty_ = true;
  return Status::OK();
}

Result<uint64_t> StorageManager::GetRoot(const std::string& name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no catalog entry named '" + name + "'");
  }
  return it->second;
}

Status StorageManager::RemoveRoot(const std::string& name) {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no catalog entry named '" + name + "'");
  }
  catalog_.erase(it);
  catalog_dirty_ = true;
  return Status::OK();
}

Status StorageManager::Checkpoint() {
  PARADISE_RETURN_IF_ERROR(PersistCatalog());
  PARADISE_RETURN_IF_ERROR(pool_->FlushAll());
  return disk_->Sync();
}

Status StorageManager::FlushAndEvictAll() {
  PARADISE_RETURN_IF_ERROR(PersistCatalog());
  return pool_->FlushAndEvictAll();
}

uint64_t StorageManager::FileSizeBytes() const {
  // PhysicalPageOffset(page_count) accounts for per-page checksum trailers
  // on format-v2 files, which page_count * page_size would under-report.
  return disk_->PhysicalPageOffset(disk_->page_count());
}

namespace {
// Catalog serialization: fixed32 entry count, then per entry
// fixed32 name length + name bytes + fixed64 value.
std::string SerializeCatalog(const std::map<std::string, uint64_t>& catalog) {
  std::string out;
  char scratch[8];
  EncodeFixed32(scratch, static_cast<uint32_t>(catalog.size()));
  out.append(scratch, 4);
  for (const auto& [name, value] : catalog) {
    EncodeFixed32(scratch, static_cast<uint32_t>(name.size()));
    out.append(scratch, 4);
    out.append(name);
    EncodeFixed64(scratch, value);
    out.append(scratch, 8);
  }
  return out;
}
}  // namespace

Status StorageManager::LoadCatalog() {
  catalog_.clear();
  catalog_dirty_ = false;
  const ObjectId oid = disk_->catalog_oid();
  if (oid == kInvalidObjectId) return Status::OK();
  PARADISE_ASSIGN_OR_RETURN(std::string blob, objects_->Read(oid));
  if (blob.size() < 4) return Status::Corruption("catalog blob too small");
  const char* p = blob.data();
  const char* end = blob.data() + blob.size();
  const uint32_t count = DecodeFixed32(p);
  p += 4;
  for (uint32_t i = 0; i < count; ++i) {
    if (p + 4 > end) return Status::Corruption("truncated catalog entry");
    const uint32_t name_len = DecodeFixed32(p);
    p += 4;
    if (p + name_len + 8 > end) {
      return Status::Corruption("truncated catalog entry");
    }
    std::string name(p, name_len);
    p += name_len;
    const uint64_t value = DecodeFixed64(p);
    p += 8;
    catalog_[std::move(name)] = value;
  }
  return Status::OK();
}

Status StorageManager::PersistCatalog() {
  if (!catalog_dirty_) return Status::OK();
  const std::string blob = SerializeCatalog(catalog_);
  ObjectId oid = disk_->catalog_oid();
  if (oid == kInvalidObjectId) {
    PARADISE_ASSIGN_OR_RETURN(oid, objects_->Create(blob));
    disk_->set_catalog_oid(oid);
  } else {
    PARADISE_RETURN_IF_ERROR(objects_->Overwrite(oid, blob));
  }
  catalog_dirty_ = false;
  return disk_->Sync();
}

}  // namespace paradise
