#include "storage/storage_manager.h"

#include "common/coding.h"
#include "storage/scrub.h"

namespace paradise {

StorageManager::~StorageManager() {
  if (is_open()) (void)Close();
}

std::unique_ptr<Disk> StorageManager::MakeDisk() const {
  std::unique_ptr<Disk> disk = std::make_unique<DiskManager>();
  if (options_.wrap_disk) disk = options_.wrap_disk(std::move(disk));
  return disk;
}

Status StorageManager::Create(const std::string& path,
                              const StorageOptions& options) {
  if (is_open()) return Status::InvalidArgument("StorageManager already open");
  options_ = options;
  disk_ = MakeDisk();
  PARADISE_RETURN_IF_ERROR(disk_->Create(path, options));
  pool_ = std::make_unique<BufferPool>(disk_.get(), options);
  objects_ = std::make_unique<LargeObjectStore>(pool_.get());
  if (options.io_pool_threads > 0) {
    io_pool_ = std::make_unique<IoPool>(options.io_pool_threads);
  }
  catalog_.clear();
  catalog_dirty_ = false;
  stale_catalog_oid_ = kInvalidObjectId;
  return Status::OK();
}

Status StorageManager::Open(const std::string& path,
                            const StorageOptions& options) {
  if (is_open()) return Status::InvalidArgument("StorageManager already open");
  options_ = options;
  disk_ = MakeDisk();
  PARADISE_RETURN_IF_ERROR(disk_->Open(path, options));
  pool_ = std::make_unique<BufferPool>(disk_.get(), options);
  objects_ = std::make_unique<LargeObjectStore>(pool_.get());
  if (options.io_pool_threads > 0) {
    io_pool_ = std::make_unique<IoPool>(options.io_pool_threads);
  }
  stale_catalog_oid_ = kInvalidObjectId;
  Status st = LoadCatalog();
  if (st.ok() && options_.scrub_on_open) {
    ScrubReport report;
    st = ScrubStorage(this, &report);
    if (st.ok() && !report.clean()) {
      st = Status::Corruption(
          "scrub found " + std::to_string(report.issues.size()) +
          " issue(s) in " + path + "; first: " + report.issues.front());
    }
  }
  if (!st.ok()) {
    // A file this manager refused to open must never be mutated by it:
    // release the handle without committing, or the destructor's Close()
    // would publish a fresh manifest epoch on a file we just rejected.
    disk_->Abandon();
    return st;
  }
  return Status::OK();
}

Status StorageManager::Close() {
  if (!is_open()) return Status::OK();
  // Stop background I/O for good before any shutdown step: a prefetch task
  // running after the disk closes would read through a dead handle.
  if (io_pool_ != nullptr) io_pool_->Shutdown();
  // Even when the final checkpoint fails, the file handle must still be
  // released — otherwise a fault during shutdown leaks the descriptor and
  // leaves the manager wedged in the "open" state. First error wins. A
  // failed checkpoint is NOT retried inside disk Close(): the last durable
  // commit stays the recovered state.
  Status st = options_.read_only ? Status::OK() : Checkpoint();
  Status close_st = st.ok() ? disk_->Close() : (disk_->Abandon(), Status::OK());
  return st.ok() ? close_st : st;
}

Status StorageManager::SetRoot(const std::string& name, uint64_t value) {
  catalog_[name] = value;
  catalog_dirty_ = true;
  return Status::OK();
}

Result<uint64_t> StorageManager::GetRoot(const std::string& name) const {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no catalog entry named '" + name + "'");
  }
  return it->second;
}

Status StorageManager::RemoveRoot(const std::string& name) {
  auto it = catalog_.find(name);
  if (it == catalog_.end()) {
    return Status::NotFound("no catalog entry named '" + name + "'");
  }
  catalog_.erase(it);
  catalog_dirty_ = true;
  return Status::OK();
}

Status StorageManager::Checkpoint() {
  // Durable-commit ordering contract (DESIGN.md "Crash consistency"):
  //   1. rewrite the catalog blob copy-on-write — never overwriting the blob
  //      the last committed manifest points to;
  //   2. flush every dirty page so the file holds all data the new commit
  //      will reference;
  //   3. Sync: fsync the data down to stable storage;
  //   4. Commit: write the alternate manifest slot naming the new catalog,
  //      and fsync again;
  //   5. only now free the superseded catalog blob. The resulting free-list
  //      update rides in the next commit — a crash meanwhile merely leaks
  //      those pages, it never dangles a committed pointer.
  // Every step mutates only state the durable manifest does not yet
  // reference, so a crash anywhere leaves the previous commit intact.
  // Background reads never dirty pages, but quiescing the I/O pool first
  // keeps the flush-sync-commit sequence free of concurrent pool traffic.
  QuiesceIo();
  PARADISE_RETURN_IF_ERROR(PersistCatalog());
  PARADISE_RETURN_IF_ERROR(pool_->FlushAll());
  PARADISE_RETURN_IF_ERROR(disk_->Sync());
  PARADISE_RETURN_IF_ERROR(disk_->Commit());
  return FreeStaleCatalog();
}

Status StorageManager::FlushAndEvictAll() {
  // Writes everything out (including a fresh copy-on-write catalog blob when
  // dirty) but commits nothing: the catalog is never persisted "ahead" of
  // the data pages it references, because only Checkpoint()/Close() publish
  // a new catalog pointer — and they flush data first (see Checkpoint()).
  // Quiesce read-ahead first: a background fetch landing between the evict
  // sweep and its completion would silently re-warm the "cold" pool.
  QuiesceIo();
  PARADISE_RETURN_IF_ERROR(PersistCatalog());
  return pool_->FlushAndEvictAll();
}

uint64_t StorageManager::FileSizeBytes() const {
  // PhysicalPageOffset(page_count) accounts for per-page checksum trailers
  // on format-v2 files, which page_count * page_size would under-report.
  return disk_->PhysicalPageOffset(disk_->page_count());
}

namespace {
// Catalog serialization: fixed32 entry count, then per entry
// fixed32 name length + name bytes + fixed64 value.
std::string SerializeCatalog(const std::map<std::string, uint64_t>& catalog) {
  std::string out;
  char scratch[8];
  EncodeFixed32(scratch, static_cast<uint32_t>(catalog.size()));
  out.append(scratch, 4);
  for (const auto& [name, value] : catalog) {
    EncodeFixed32(scratch, static_cast<uint32_t>(name.size()));
    out.append(scratch, 4);
    out.append(name);
    EncodeFixed64(scratch, value);
    out.append(scratch, 8);
  }
  return out;
}
}  // namespace

Status StorageManager::LoadCatalog() {
  catalog_.clear();
  catalog_dirty_ = false;
  const ObjectId oid = disk_->catalog_oid();
  if (oid == kInvalidObjectId) return Status::OK();
  PARADISE_ASSIGN_OR_RETURN(std::string blob, objects_->Read(oid));
  if (blob.size() < 4) return Status::Corruption("catalog blob too small");
  const char* p = blob.data();
  const char* end = blob.data() + blob.size();
  const uint32_t count = DecodeFixed32(p);
  p += 4;
  for (uint32_t i = 0; i < count; ++i) {
    if (p + 4 > end) return Status::Corruption("truncated catalog entry");
    const uint32_t name_len = DecodeFixed32(p);
    p += 4;
    if (p + name_len + 8 > end) {
      return Status::Corruption("truncated catalog entry");
    }
    std::string name(p, name_len);
    p += name_len;
    const uint64_t value = DecodeFixed64(p);
    p += 8;
    catalog_[std::move(name)] = value;
  }
  return Status::OK();
}

Status StorageManager::PersistCatalog() {
  if (!catalog_dirty_) return Status::OK();
  const std::string blob = SerializeCatalog(catalog_);
  const ObjectId old = disk_->catalog_oid();
  // Copy-on-write: the blob named by the last committed manifest must stay
  // byte-identical until a newer manifest lands, or a crash between the two
  // would recover a manifest whose catalog pages were clobbered.
  PARADISE_ASSIGN_OR_RETURN(const ObjectId oid, objects_->Create(blob));
  disk_->set_catalog_oid(oid);
  if (old != kInvalidObjectId) {
    if (stale_catalog_oid_ == kInvalidObjectId) {
      stale_catalog_oid_ = old;  // committed blob: defer until after Commit
    } else {
      // `old` was written after the last commit and is referenced by no
      // manifest, so it can be recycled immediately.
      PARADISE_RETURN_IF_ERROR(objects_->Free(old));
    }
  }
  catalog_dirty_ = false;
  return Status::OK();
}

Status StorageManager::FreeStaleCatalog() {
  if (stale_catalog_oid_ == kInvalidObjectId) return Status::OK();
  const ObjectId oid = stale_catalog_oid_;
  stale_catalog_oid_ = kInvalidObjectId;
  return objects_->Free(oid).WithContext(
      "recycling superseded catalog object");
}

}  // namespace paradise
