#include "storage/extent_allocator.h"

#include <cstring>

#include "common/coding.h"

namespace paradise {

namespace {
// Directory page layout (root and overflow pages share it):
//   [0,4)   magic "EXTD"
//   [4,8)   pages per extent (root only; 0 on overflow pages)
//   [8,16)  next directory PageId
//   [16,20) number of extent ids in this page
//   [20,..) extent first-page ids, 8 bytes each
constexpr char kMagic[4] = {'E', 'X', 'T', 'D'};
constexpr size_t kMagicOffset = 0;
constexpr size_t kPagesPerExtentOffset = 4;
constexpr size_t kNextOffset = 8;
constexpr size_t kCountOffset = 16;
constexpr size_t kIdsOffset = 20;

size_t IdCapacity(size_t page_size) { return (page_size - kIdsOffset) / 8; }
}  // namespace

Result<PageId> ExtentAllocator::Create(uint32_t pages_per_extent) {
  if (pages_per_extent == 0) {
    return Status::InvalidArgument("pages_per_extent must be > 0");
  }
  PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->NewPage());
  char* p = g.mutable_data();
  std::memcpy(p + kMagicOffset, kMagic, sizeof(kMagic));
  EncodeFixed32(p + kPagesPerExtentOffset, pages_per_extent);
  EncodeFixed64(p + kNextOffset, kInvalidPageId);
  EncodeFixed32(p + kCountOffset, 0);
  root_ = g.page_id();
  pages_per_extent_ = pages_per_extent;
  extent_firsts_.clear();
  directory_pages_ = {root_};
  return root_;
}

Status ExtentAllocator::Open(PageId root) {
  extent_firsts_.clear();
  directory_pages_.clear();
  PageId next = root;
  bool first = true;
  while (next != kInvalidPageId) {
    directory_pages_.push_back(next);
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(next));
    const char* p = g.data();
    if (std::memcmp(p + kMagicOffset, kMagic, sizeof(kMagic)) != 0) {
      return Status::Corruption("not an extent directory: page " +
                                std::to_string(next));
    }
    if (first) {
      pages_per_extent_ = DecodeFixed32(p + kPagesPerExtentOffset);
      if (pages_per_extent_ == 0) {
        return Status::Corruption("extent directory has zero extent size");
      }
      first = false;
    }
    const uint32_t count = DecodeFixed32(p + kCountOffset);
    for (uint32_t i = 0; i < count; ++i) {
      extent_firsts_.push_back(DecodeFixed64(p + kIdsOffset + i * 8));
    }
    next = DecodeFixed64(p + kNextOffset);
  }
  root_ = root;
  return Status::OK();
}

Status ExtentAllocator::EnsureCapacity(uint64_t logical_pages) {
  bool grew = false;
  while (logical_page_capacity() < logical_pages) {
    PARADISE_ASSIGN_OR_RETURN(PageId first,
                              disk_->AllocateContiguous(pages_per_extent_));
    extent_firsts_.push_back(first);
    grew = true;
  }
  if (grew) return PersistDirectory();
  return Status::OK();
}

Result<PageId> ExtentAllocator::LogicalToPhysical(
    uint64_t logical_index) const {
  const uint64_t extent = logical_index / pages_per_extent_;
  if (extent >= extent_firsts_.size()) {
    return Status::OutOfRange("logical page " + std::to_string(logical_index) +
                              " beyond capacity " +
                              std::to_string(logical_page_capacity()));
  }
  return extent_firsts_[extent] + logical_index % pages_per_extent_;
}

Status ExtentAllocator::PersistDirectory() {
  const size_t page_size = pool_->page_size();
  const size_t cap = IdCapacity(page_size);
  const size_t pages_needed =
      extent_firsts_.empty()
          ? 1
          : (extent_firsts_.size() + cap - 1) / cap;
  while (directory_pages_.size() < pages_needed) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->NewPage());
    directory_pages_.push_back(g.page_id());
  }
  size_t written = 0;
  for (size_t d = 0; d < directory_pages_.size(); ++d) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g,
                              pool_->FetchPage(directory_pages_[d]));
    char* p = g.mutable_data();
    std::memset(p, 0, page_size);
    std::memcpy(p + kMagicOffset, kMagic, sizeof(kMagic));
    EncodeFixed32(p + kPagesPerExtentOffset, d == 0 ? pages_per_extent_ : 0);
    EncodeFixed64(p + kNextOffset,
                  d + 1 < directory_pages_.size() ? directory_pages_[d + 1]
                                                  : kInvalidPageId);
    const size_t in_page =
        std::min(cap, extent_firsts_.size() - written);
    EncodeFixed32(p + kCountOffset, static_cast<uint32_t>(in_page));
    for (size_t i = 0; i < in_page; ++i) {
      EncodeFixed64(p + kIdsOffset + i * 8, extent_firsts_[written + i]);
    }
    written += in_page;
  }
  return Status::OK();
}

}  // namespace paradise
