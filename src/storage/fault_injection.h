// FaultInjectingDiskManager: a Disk decorator that injects storage faults —
// read/write errors, on-disk bit flips, torn writes, close-time flush
// failures, fsync failures, and whole-machine power loss — deterministically
// (seeded PRNG plus one-shot countdowns) so the fault-testing suite can
// prove every layer above the disk either retries to the correct answer or
// fails with a descriptive Status, never a crash or a silently wrong result.
//
// Faults are injected at the Disk boundary the BufferPool talks to.
// Corruption faults (bit flips, torn writes) are applied to the underlying
// file itself, below the inner DiskManager's checksum layer, so they are
// surfaced exactly the way real media corruption is: as kCorruption from
// checksum verification on the next read of the page.
//
// The power-loss mode drives the crash-point sweep (tests/
// crash_recovery_test.cc): after a chosen number of mutating disk operations
// the wrapper rolls the file back to its last durability barrier (modeling
// the loss of everything the OS had not fsynced) and fails all further I/O,
// so reopening the file exercises exactly the state a real crash would
// leave behind.
//
// Install via StorageOptions::wrap_disk:
//   FaultInjectingDiskManager* faults = nullptr;
//   options.storage.wrap_disk = [&](std::unique_ptr<Disk> inner) {
//     auto w = std::make_unique<FaultInjectingDiskManager>(std::move(inner));
//     faults = w.get();
//     return std::unique_ptr<Disk>(std::move(w));
//   };
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace paradise {

/// Fault schedule. Countdown fields are 1-based one-shot triggers counted in
/// calls seen by this wrapper (0 = disabled); probabilistic fields draw from
/// the seeded PRNG per call. All injections respect [min_page, max_page] and
/// stop once `max_injected_faults` have fired, which makes probabilistic
/// faults transient: bounded retry eventually succeeds.
struct FaultInjectionOptions {
  uint64_t seed = 42;

  // Probabilistic faults (0.0 disables).
  double read_error_probability = 0.0;
  double write_error_probability = 0.0;
  double read_bit_flip_probability = 0.0;

  // One-shot countdowns: fire on exactly the Nth read/write seen.
  uint64_t fail_nth_read = 0;
  uint64_t fail_nth_write = 0;
  uint64_t flip_bit_on_nth_read = 0;
  uint64_t torn_write_on_nth_write = 0;

  // One-shot countdown: fail exactly the Nth durability barrier (Sync or
  // Commit) seen, leaving buffered data un-fsynced.
  uint64_t fail_nth_sync = 0;

  // Page-range filter for probabilistic faults.
  PageId min_page = 0;
  PageId max_page = kInvalidPageId;

  // Total injected-fault budget across all fault kinds.
  uint64_t max_injected_faults = UINT64_MAX;

  // Close() reports a header-flush failure (after really closing the file).
  bool fail_on_close = false;

  // Power-loss crash point (0 = disabled): after this many mutating disk
  // operations (page writes, frees, allocations, flushes, syncs, commits)
  // have been allowed through, the machine "dies" — every page written since
  // the last successful durability barrier is rolled back in the file
  // (modeling the maximal loss of un-fsynced data a real crash can inflict)
  // and every subsequent operation, reads included, fails with kIOError.
  // Close() on a dead disk abandons the file instead of committing.
  uint64_t power_loss_after_ops = 0;

  // Record one entry per mutating operation ("write:<page>", "free:<page>",
  // "alloc", "flush", "sync", "commit") so tests can assert ordering
  // contracts such as data-sync-before-commit.
  bool record_ops = false;
};

class FaultInjectingDiskManager final : public Disk {
 public:
  explicit FaultInjectingDiskManager(std::unique_ptr<Disk> inner,
                                     FaultInjectionOptions faults = {});

  // --- Disk interface, forwarded with fault hooks ---
  Status Create(const std::string& path, const StorageOptions& options) override;
  Status Open(const std::string& path, const StorageOptions& options) override;
  Status Close() override;
  void Abandon() override;
  Status Flush() override;
  bool is_open() const override { return inner_->is_open(); }
  size_t page_size() const override { return inner_->page_size(); }
  uint64_t page_count() const override { return inner_->page_count(); }
  const std::string& path() const override { return inner_->path(); }
  uint32_t format_version() const override { return inner_->format_version(); }
  uint64_t PhysicalPageOffset(PageId id) const override {
    return inner_->PhysicalPageOffset(id);
  }
  Status ReadPage(PageId id, char* buf) override;
  Status WritePage(PageId id, const char* buf) override;
  Result<PageId> AllocatePage() override;
  Result<PageId> AllocateContiguous(uint64_t n) override;
  Status FreePage(PageId id) override;
  ObjectId catalog_oid() const override { return inner_->catalog_oid(); }
  void set_catalog_oid(ObjectId oid) override { inner_->set_catalog_oid(oid); }
  PageId free_list_head() const override { return inner_->free_list_head(); }
  uint32_t load_state() const override { return inner_->load_state(); }
  void set_load_state(uint32_t state) override {
    inner_->set_load_state(state);
  }
  Status Sync() override;
  Status Commit() override;
  uint64_t commit_epoch() const override { return inner_->commit_epoch(); }
  uint64_t reads_performed() const override {
    return inner_->reads_performed();
  }
  uint64_t writes_performed() const override {
    return inner_->writes_performed();
  }

  // --- fault control ---

  /// Live-tunable schedule: tests typically load a database fault-free, then
  /// arm faults before querying.
  FaultInjectionOptions& faults() { return faults_; }

  /// Replaces the schedule, reseeds the PRNG and zeroes the call counters
  /// (including power-loss state), so one-shot countdowns are relative to
  /// the arming point.
  void Arm(const FaultInjectionOptions& faults);

  /// Flips one bit of page `id` directly in the underlying file (below the
  /// checksum layer). `bit_index` is within the page's data bytes. The next
  /// uncached read of the page fails checksum verification on v2+ files.
  Status FlipBitOnDisk(PageId id, uint64_t bit_index);

  /// Kills the disk now, as if power were cut: un-fsynced page writes are
  /// rolled back in the file and all further operations fail. Idempotent.
  /// Also fired automatically by the power_loss_after_ops countdown.
  void SimulatePowerLoss();
  bool power_lost() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return power_lost_;
  }

  uint64_t reads_seen() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return reads_seen_;
  }
  uint64_t writes_seen() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return writes_seen_;
  }
  uint64_t ops_seen() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return ops_seen_;
  }
  uint64_t injected_faults() const {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    return injected_;
  }

  /// Mutating-operation trace (empty unless faults().record_ops). The
  /// returned reference is only stable while no other thread is issuing
  /// disk operations — read it after concurrent work has joined.
  const std::vector<std::string>& op_log() const { return op_log_; }

  Disk* inner() { return inner_.get(); }

 private:
  bool InRange(PageId id) const {
    return id >= faults_.min_page && id <= faults_.max_page;
  }
  bool Armed() const { return injected_ < faults_.max_injected_faults; }

  /// Gate shared by every operation: fails once the power-loss countdown has
  /// expired (triggering the crash on first expiry).
  Status GateOp();

  /// Bumps the local injected-fault count and its registry mirror.
  void CountInjected();
  void RecordOp(std::string op);
  Status PowerLossError() const;

  /// Snapshots page `id`'s current on-disk bytes (data + trailer) so a later
  /// SimulatePowerLoss() can roll the write back. Pages beyond EOF snapshot
  /// as zeros. No-op unless power-loss mode is armed.
  Status CapturePreimage(PageId id);

  /// Persists only a prefix of the page to the file and reports success —
  /// the write that a power cut interrupted.
  Status TornWrite(PageId id, const char* buf);

  /// Serializes the fault schedule, PRNG, call counters, pre-images and op
  /// log so the wrapper stays deterministic-per-schedule when the sharded
  /// buffer pool and the read-ahead pool issue I/O concurrently. Recursive
  /// because public operations compose (Close→Abandon, ReadPage→
  /// FlipBitOnDisk, GateOp→SimulatePowerLoss). Like the inner DiskManager's
  /// mutex, this is a leaf lock: nothing called under it re-enters the pool.
  mutable std::recursive_mutex mu_;

  std::unique_ptr<Disk> inner_;
  FaultInjectionOptions faults_;
  Random rng_;
  uint64_t reads_seen_ = 0;
  uint64_t writes_seen_ = 0;
  uint64_t ops_seen_ = 0;
  uint64_t syncs_seen_ = 0;
  uint64_t injected_ = 0;
  bool power_lost_ = false;
  // On-disk bytes of pages written since the last durability barrier, keyed
  // by page id; restored verbatim on power loss.
  std::map<PageId, std::string> preimages_;
  std::vector<std::string> op_log_;
  /// "faults.injected" registry mirror, resolved at Create/Open when
  /// StorageOptions::metrics_enabled is set.
  Counter* m_injected_ = nullptr;
};

}  // namespace paradise
