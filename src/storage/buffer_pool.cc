#include "storage/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

namespace paradise {

namespace {
/// Shard-count clamp: every shard keeps at least this many frames, so small
/// pools (and the tests that reason about exact eviction order) collapse to
/// a single shard with the same semantics the unsharded pool had.
constexpr size_t kMinFramesPerShard = 16;

size_t EffectiveShards(const StorageOptions& options) {
  const size_t by_capacity =
      options.buffer_pool_pages / (2 * kMinFramesPerShard);
  size_t shards = options.pool_shards;
  if (shards > by_capacity) shards = by_capacity;
  return shards == 0 ? 1 : shards;
}
}  // namespace

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    shard_index_ = other.shard_index_;
    frame_index_ = other.frame_index_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
    other.page_id_ = kInvalidPageId;
  }
  return *this;
}

const char* PageGuard::data() const {
  assert(valid());
  return pool_->FrameData(shard_index_, frame_index_);
}

char* PageGuard::mutable_data() {
  assert(valid());
  return pool_->MutableFrameData(shard_index_, frame_index_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(shard_index_, frame_index_);
    pool_ = nullptr;
    page_id_ = kInvalidPageId;
  }
}

BufferPool::BufferPool(Disk* disk, const StorageOptions& options)
    : disk_(disk),
      page_size_(options.page_size),
      capacity_(options.buffer_pool_pages),
      read_retry_limit_(options.read_retry_limit),
      read_retry_backoff_micros_(options.read_retry_backoff_micros),
      eviction_(options.eviction) {
  if (options.metrics_enabled) {
    MetricsRegistry& reg = MetricsRegistry::Default();
    mirror_.hits = reg.GetCounter("bufferpool.hits");
    mirror_.misses = reg.GetCounter("bufferpool.misses");
    mirror_.evictions = reg.GetCounter("bufferpool.evictions");
    mirror_.coalesced_reads = reg.GetCounter("bufferpool.coalesced_reads");
    mirror_.disk_writes = reg.GetCounter("bufferpool.disk_writes");
    mirror_.read_retries = reg.GetCounter("bufferpool.read_retries");
    mirror_.prefetched = reg.GetCounter("prefetch.issued");
    mirror_.prefetch_hits = reg.GetCounter("prefetch.hits");
    mirror_.prefetch_wasted = reg.GetCounter("prefetch.wasted");
  }
  const size_t num_shards = EffectiveShards(options);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    // Distribute frames evenly; the first (capacity % shards) shards take
    // one extra so the total stays exactly buffer_pool_pages.
    const size_t frames =
        capacity_ / num_shards + (s < capacity_ % num_shards ? 1 : 0);
    shard->frames.resize(frames);
    shard->free_frames.reserve(frames);
    for (size_t i = frames; i > 0; --i) {
      shard->free_frames.push_back(i - 1);
    }
    shards_.push_back(std::move(shard));
  }
}

const char* BufferPool::FrameData(size_t shard_index,
                                  size_t frame_index) const {
  // No latch: the caller holds a pin, so the frame cannot be evicted or
  // reused, and its data vector is never reallocated while pinned.
  return shards_[shard_index]->frames[frame_index].data.data();
}

char* BufferPool::MutableFrameData(size_t shard_index, size_t frame_index) {
  Shard& s = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(s.mu);
  Frame& f = s.frames[frame_index];
  f.dirty = true;
  return f.data.data();
}

Result<size_t> BufferPool::PickClockVictim(Shard& s) {
  // Clock sweep: clear reference bits until an unpinned, unreferenced frame
  // is found. Two full sweeps with no victim means every frame is pinned.
  const size_t n = s.frames.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame& f = s.frames[s.clock_hand];
    const size_t idx = s.clock_hand;
    s.clock_hand = (s.clock_hand + 1) % n;
    if (f.pin_count > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    return idx;
  }
  return Status::ResourceExhausted(
      "buffer pool exhausted: all " + std::to_string(n) +
      " frames of the page's shard pinned");
}

Result<size_t> BufferPool::PickLruVictim(Shard& s) {
  size_t victim = s.frames.size();
  uint64_t oldest = UINT64_MAX;
  for (size_t i = 0; i < s.frames.size(); ++i) {
    const Frame& f = s.frames[i];
    if (f.pin_count > 0) continue;
    if (f.last_used < oldest) {
      oldest = f.last_used;
      victim = i;
    }
  }
  if (victim == s.frames.size()) {
    return Status::ResourceExhausted(
        "buffer pool exhausted: all " + std::to_string(s.frames.size()) +
        " frames of the page's shard pinned");
  }
  return victim;
}

Result<size_t> BufferPool::AcquireFrame(Shard& s) {
  if (!s.free_frames.empty()) {
    const size_t idx = s.free_frames.back();
    s.free_frames.pop_back();
    if (s.frames[idx].data.empty()) s.frames[idx].data.resize(page_size_);
    return idx;
  }
  PARADISE_ASSIGN_OR_RETURN(size_t idx, eviction_ == EvictionPolicy::kLru
                                            ? PickLruVictim(s)
                                            : PickClockVictim(s));
  Frame& f = s.frames[idx];
  if (f.dirty) {
    // Write-back under the shard latch: only this shard stalls, and the
    // OLAP read path evicts clean pages almost exclusively.
    PARADISE_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.data()));
    ++s.stats.disk_writes;
    if (mirror_.disk_writes != nullptr) mirror_.disk_writes->Increment();
    f.dirty = false;
  }
  s.page_table.erase(f.page_id);
  f.page_id = kInvalidPageId;
  ++s.stats.evictions;
  if (mirror_.evictions != nullptr) mirror_.evictions->Increment();
  return idx;
}

void BufferPool::CountDiskRead(Shard& s, PageId id) {
  ++s.stats.disk_reads;
  const PageId prev =
      last_disk_read_.exchange(id, std::memory_order_relaxed);
  if (prev != kInvalidPageId && id == prev + 1) {
    ++s.stats.seq_disk_reads;
  } else {
    ++s.stats.rand_disk_reads;
  }
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  const size_t shard_index = ShardIndex(id);
  Shard& s = *shards_[shard_index];
  std::unique_lock<std::mutex> lock(s.mu);
  ++s.stats.logical_reads;
  bool counted_coalesced = false;
  for (;;) {
    auto it = s.page_table.find(id);
    if (it == s.page_table.end()) break;
    Frame& f = s.frames[it->second];
    if (f.io_in_progress) {
      // Another thread is reading this page right now; wait instead of
      // issuing a duplicate disk read. On wake the frame may have been
      // reclaimed (failed read), so re-run the lookup from scratch. Count
      // the coalescing once per fetch, not once per (spurious) wakeup.
      if (!counted_coalesced) {
        counted_coalesced = true;
        ++s.stats.coalesced_reads;
        if (mirror_.coalesced_reads != nullptr) {
          mirror_.coalesced_reads->Increment();
        }
      }
      s.io_cv.wait(lock);
      continue;
    }
    ++s.stats.hits;
    if (mirror_.hits != nullptr) mirror_.hits->Increment();
    ++f.pin_count;
    f.referenced = true;
    f.last_used = ++s.tick;
    return PageGuard(this, shard_index, it->second, id);
  }
  PARADISE_ASSIGN_OR_RETURN(size_t idx, AcquireFrame(s));
  Frame& f = s.frames[idx];
  // Reserve the frame (pinned + io flag) so eviction skips it and same-page
  // fetches wait, then read outside the latch so other pages in this shard
  // stay servable during the I/O.
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.referenced = true;
  f.io_in_progress = true;
  f.last_used = ++s.tick;
  s.page_table[id] = idx;
  lock.unlock();

  uint64_t retries = 0;
  Status st = ReadWithRetry(id, f.data.data(), &retries);

  lock.lock();
  f.io_in_progress = false;
  s.stats.read_retries += retries;
  if (mirror_.read_retries != nullptr && retries > 0) {
    mirror_.read_retries->Increment(retries);
  }
  if (mirror_.misses != nullptr) mirror_.misses->Increment();
  if (!st.ok()) {
    s.page_table.erase(id);
    f.page_id = kInvalidPageId;
    f.pin_count = 0;
    s.free_frames.push_back(idx);
    s.io_cv.notify_all();
    return st;
  }
  CountDiskRead(s, id);
  s.io_cv.notify_all();
  return PageGuard(this, shard_index, idx, id);
}

Result<PageGuard> BufferPool::NewPage() {
  PARADISE_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  const size_t shard_index = ShardIndex(id);
  Shard& s = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(s.mu);
  PARADISE_ASSIGN_OR_RETURN(size_t idx, AcquireFrame(s));
  Frame& f = s.frames[idx];
  std::memset(f.data.data(), 0, page_size_);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.referenced = true;
  f.io_in_progress = false;
  f.last_used = ++s.tick;
  s.page_table[id] = idx;
  return PageGuard(this, shard_index, idx, id);
}

Status BufferPool::DeletePage(PageId id) {
  Shard& s = *shards_[ShardIndex(id)];
  {
    std::unique_lock<std::mutex> lock(s.mu);
    auto it = s.page_table.find(id);
    if (it != s.page_table.end()) {
      Frame& f = s.frames[it->second];
      if (f.pin_count > 0) {
        return Status::InvalidArgument("cannot delete pinned page " +
                                       std::to_string(id));
      }
      f.page_id = kInvalidPageId;
      f.dirty = false;
      s.free_frames.push_back(it->second);
      s.page_table.erase(it);
    }
  }
  return disk_->FreePage(id);
}

Status BufferPool::FlushPage(PageId id) {
  Shard& s = *shards_[ShardIndex(id)];
  std::unique_lock<std::mutex> lock(s.mu);
  auto it = s.page_table.find(id);
  if (it == s.page_table.end()) return Status::OK();
  Frame& f = s.frames[it->second];
  if (f.dirty) {
    PARADISE_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.data()));
    ++s.stats.disk_writes;
    if (mirror_.disk_writes != nullptr) mirror_.disk_writes->Increment();
    f.dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    std::lock_guard<std::mutex> lock(s.mu);
    for (Frame& f : s.frames) {
      if (f.page_id != kInvalidPageId && f.dirty) {
        PARADISE_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.data()));
        ++s.stats.disk_writes;
        if (mirror_.disk_writes != nullptr) mirror_.disk_writes->Increment();
        f.dirty = false;
      }
    }
  }
  return Status::OK();
}

Status BufferPool::FlushAndEvictAll() {
  PARADISE_RETURN_IF_ERROR(FlushAll());
  for (auto& shard : shards_) {
    Shard& s = *shard;
    std::lock_guard<std::mutex> lock(s.mu);
    for (size_t i = 0; i < s.frames.size(); ++i) {
      Frame& f = s.frames[i];
      if (f.page_id == kInvalidPageId || f.pin_count > 0) continue;
      s.page_table.erase(f.page_id);
      f.page_id = kInvalidPageId;
      f.referenced = false;
      s.free_frames.push_back(i);
    }
  }
  return Status::OK();
}

Status BufferPool::ReadWithRetry(PageId id, char* buf, uint64_t* retries) {
  Status st = disk_->ReadPage(id, buf);
  uint64_t backoff = read_retry_backoff_micros_;
  for (size_t attempt = 0; !st.ok() && st.IsIOError() &&
                           attempt < read_retry_limit_;
       ++attempt) {
    // Only transient I/O errors are worth re-issuing; a checksum mismatch
    // (kCorruption) would just re-read the same bad bytes.
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      backoff *= 2;
    }
    ++*retries;
    st = disk_->ReadPage(id, buf);
  }
  return st;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    const Shard& s = *shard;
    std::lock_guard<std::mutex> lock(s.mu);
    total.logical_reads += s.stats.logical_reads;
    total.hits += s.stats.hits;
    total.disk_reads += s.stats.disk_reads;
    total.seq_disk_reads += s.stats.seq_disk_reads;
    total.rand_disk_reads += s.stats.rand_disk_reads;
    total.disk_writes += s.stats.disk_writes;
    total.evictions += s.stats.evictions;
    total.read_retries += s.stats.read_retries;
    total.coalesced_reads += s.stats.coalesced_reads;
  }
  total.prefetched = prefetched_.load(std::memory_order_relaxed);
  total.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  total.prefetch_wasted = prefetch_wasted_.load(std::memory_order_relaxed);
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    Shard& s = *shard;
    std::lock_guard<std::mutex> lock(s.mu);
    s.stats = BufferPoolStats{};
  }
  prefetched_.store(0, std::memory_order_relaxed);
  prefetch_hits_.store(0, std::memory_order_relaxed);
  prefetch_wasted_.store(0, std::memory_order_relaxed);
}

void BufferPool::RecordPrefetch() {
  prefetched_.fetch_add(1, std::memory_order_relaxed);
  if (mirror_.prefetched != nullptr) mirror_.prefetched->Increment();
}

void BufferPool::RecordPrefetchHit() {
  prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
  if (mirror_.prefetch_hits != nullptr) mirror_.prefetch_hits->Increment();
}

void BufferPool::RecordPrefetchWasted(uint64_t n) {
  if (n == 0) return;
  prefetch_wasted_.fetch_add(n, std::memory_order_relaxed);
  if (mirror_.prefetch_wasted != nullptr) mirror_.prefetch_wasted->Increment(n);
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    const Shard& s = *shard;
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Frame& f : s.frames) {
      if (f.page_id != kInvalidPageId && f.pin_count > 0) ++n;
    }
  }
  return n;
}

void BufferPool::Unpin(size_t shard_index, size_t frame_index) {
  Shard& s = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(s.mu);
  Frame& f = s.frames[frame_index];
  assert(f.pin_count > 0);
  --f.pin_count;
}

}  // namespace paradise
