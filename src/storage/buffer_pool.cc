#include "storage/buffer_pool.h"

#include <cassert>
#include <chrono>
#include <cstring>
#include <thread>

namespace paradise {

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_index_ = other.frame_index_;
    page_id_ = other.page_id_;
    other.pool_ = nullptr;
    other.page_id_ = kInvalidPageId;
  }
  return *this;
}

const char* PageGuard::data() const {
  assert(valid());
  return pool_->FrameData(frame_index_);
}

char* PageGuard::mutable_data() {
  assert(valid());
  return pool_->MutableFrameData(frame_index_);
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_index_);
    pool_ = nullptr;
    page_id_ = kInvalidPageId;
  }
}

BufferPool::BufferPool(Disk* disk, const StorageOptions& options)
    : disk_(disk),
      page_size_(options.page_size),
      read_retry_limit_(options.read_retry_limit),
      read_retry_backoff_micros_(options.read_retry_backoff_micros),
      eviction_(options.eviction) {
  frames_.resize(options.buffer_pool_pages);
  free_frames_.reserve(frames_.size());
  for (size_t i = frames_.size(); i > 0; --i) {
    free_frames_.push_back(i - 1);
  }
}

Result<size_t> BufferPool::PickClockVictim() {
  // Clock sweep: clear reference bits until an unpinned, unreferenced frame
  // is found. Two full sweeps with no victim means every frame is pinned.
  const size_t n = frames_.size();
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame& f = frames_[clock_hand_];
    const size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (f.pin_count > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    return idx;
  }
  return Status::ResourceExhausted(
      "buffer pool exhausted: all " + std::to_string(n) + " frames pinned");
}

Result<size_t> BufferPool::PickLruVictim() {
  size_t victim = frames_.size();
  uint64_t oldest = UINT64_MAX;
  for (size_t i = 0; i < frames_.size(); ++i) {
    const Frame& f = frames_[i];
    if (f.pin_count > 0) continue;
    if (f.last_used < oldest) {
      oldest = f.last_used;
      victim = i;
    }
  }
  if (victim == frames_.size()) {
    return Status::ResourceExhausted("buffer pool exhausted: all " +
                                     std::to_string(frames_.size()) +
                                     " frames pinned");
  }
  return victim;
}

Result<size_t> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    const size_t idx = free_frames_.back();
    free_frames_.pop_back();
    if (frames_[idx].data.empty()) frames_[idx].data.resize(page_size_);
    return idx;
  }
  PARADISE_ASSIGN_OR_RETURN(size_t idx, eviction_ == EvictionPolicy::kLru
                                            ? PickLruVictim()
                                            : PickClockVictim());
  Frame& f = frames_[idx];
  if (f.dirty) {
    PARADISE_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.data()));
    ++stats_.disk_writes;
    f.dirty = false;
  }
  page_table_.erase(f.page_id);
  f.page_id = kInvalidPageId;
  ++stats_.evictions;
  return idx;
}

Result<PageGuard> BufferPool::FetchPage(PageId id) {
  ++stats_.logical_reads;
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    ++stats_.hits;
    Frame& f = frames_[it->second];
    ++f.pin_count;
    f.referenced = true;
    f.last_used = ++tick_;
    return PageGuard(this, it->second, id);
  }
  PARADISE_ASSIGN_OR_RETURN(size_t idx, AcquireFrame());
  Frame& f = frames_[idx];
  Status st = ReadWithRetry(id, f.data.data());
  if (!st.ok()) {
    free_frames_.push_back(idx);
    return st;
  }
  ++stats_.disk_reads;
  if (last_disk_read_ != kInvalidPageId && id == last_disk_read_ + 1) {
    ++stats_.seq_disk_reads;
  } else {
    ++stats_.rand_disk_reads;
  }
  last_disk_read_ = id;
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = false;
  f.referenced = true;
  f.last_used = ++tick_;
  page_table_[id] = idx;
  return PageGuard(this, idx, id);
}

Result<PageGuard> BufferPool::NewPage() {
  PARADISE_ASSIGN_OR_RETURN(PageId id, disk_->AllocatePage());
  PARADISE_ASSIGN_OR_RETURN(size_t idx, AcquireFrame());
  Frame& f = frames_[idx];
  std::memset(f.data.data(), 0, page_size_);
  f.page_id = id;
  f.pin_count = 1;
  f.dirty = true;
  f.referenced = true;
  f.last_used = ++tick_;
  page_table_[id] = idx;
  return PageGuard(this, idx, id);
}

Status BufferPool::DeletePage(PageId id) {
  auto it = page_table_.find(id);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    if (f.pin_count > 0) {
      return Status::InvalidArgument("cannot delete pinned page " +
                                     std::to_string(id));
    }
    f.page_id = kInvalidPageId;
    f.dirty = false;
    free_frames_.push_back(it->second);
    page_table_.erase(it);
  }
  return disk_->FreePage(id);
}

Status BufferPool::FlushPage(PageId id) {
  auto it = page_table_.find(id);
  if (it == page_table_.end()) return Status::OK();
  Frame& f = frames_[it->second];
  if (f.dirty) {
    PARADISE_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.data()));
    ++stats_.disk_writes;
    f.dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.dirty) {
      PARADISE_RETURN_IF_ERROR(disk_->WritePage(f.page_id, f.data.data()));
      ++stats_.disk_writes;
      f.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferPool::FlushAndEvictAll() {
  PARADISE_RETURN_IF_ERROR(FlushAll());
  for (size_t i = 0; i < frames_.size(); ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId || f.pin_count > 0) continue;
    page_table_.erase(f.page_id);
    f.page_id = kInvalidPageId;
    f.referenced = false;
    free_frames_.push_back(i);
  }
  return Status::OK();
}

Status BufferPool::ReadWithRetry(PageId id, char* buf) {
  Status st = disk_->ReadPage(id, buf);
  uint64_t backoff = read_retry_backoff_micros_;
  for (size_t attempt = 0; !st.ok() && st.IsIOError() &&
                           attempt < read_retry_limit_;
       ++attempt) {
    // Only transient I/O errors are worth re-issuing; a checksum mismatch
    // (kCorruption) would just re-read the same bad bytes.
    if (backoff > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      backoff *= 2;
    }
    ++stats_.read_retries;
    st = disk_->ReadPage(id, buf);
  }
  return st;
}

size_t BufferPool::pinned_frames() const {
  size_t n = 0;
  for (const Frame& f : frames_) {
    if (f.page_id != kInvalidPageId && f.pin_count > 0) ++n;
  }
  return n;
}

void BufferPool::Unpin(size_t frame_index) {
  Frame& f = frames_[frame_index];
  assert(f.pin_count > 0);
  --f.pin_count;
}

}  // namespace paradise
