// BufferPool: fixed-capacity page cache over the DiskManager with clock
// eviction, pin counting, dirty tracking, and hit/miss statistics. Every
// higher-level structure (fact file, B-trees, bitmaps, array chunks) does
// its page I/O through this class, so both query engines compete under the
// same I/O accounting — mirroring the paper, where both run inside Paradise
// on one SHORE buffer pool.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace paradise {

class BufferPool;

/// Counters exposed for benchmarking. `logical_reads` counts FetchPage
/// calls; `disk_reads` counts the subset that missed the pool. Disk reads
/// are further classified: a read of the page physically following the
/// previous disk read is `seq_disk_reads`, anything else `rand_disk_reads` —
/// the split the 1997 I/O cost model in query/engine.h uses.
struct BufferPoolStats {
  uint64_t logical_reads = 0;
  uint64_t hits = 0;
  uint64_t disk_reads = 0;
  uint64_t seq_disk_reads = 0;
  uint64_t rand_disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t evictions = 0;
  /// Disk reads re-issued after a transient (kIOError) failure.
  uint64_t read_retries = 0;

  BufferPoolStats Delta(const BufferPoolStats& earlier) const {
    BufferPoolStats d;
    d.logical_reads = logical_reads - earlier.logical_reads;
    d.hits = hits - earlier.hits;
    d.disk_reads = disk_reads - earlier.disk_reads;
    d.seq_disk_reads = seq_disk_reads - earlier.seq_disk_reads;
    d.rand_disk_reads = rand_disk_reads - earlier.rand_disk_reads;
    d.disk_writes = disk_writes - earlier.disk_writes;
    d.evictions = evictions - earlier.evictions;
    d.read_retries = read_retries - earlier.read_retries;
    return d;
  }
};

/// RAII pin on a buffered page. While alive, the frame cannot be evicted.
/// `mutable_data()` marks the page dirty. Movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_index, PageId page_id)
      : pool_(pool), frame_index_(frame_index), page_id_(page_id) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  /// Read-only view of the page bytes.
  const char* data() const;

  /// Writable view; marks the page dirty.
  char* mutable_data();

  /// Drops the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t frame_index_ = 0;
  PageId page_id_ = kInvalidPageId;
};

class BufferPool {
 public:
  BufferPool(Disk* disk, const StorageOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned guard on page `id`, reading it from disk on a miss.
  Result<PageGuard> FetchPage(PageId id);

  /// Allocates a fresh zeroed page and returns it pinned (and dirty).
  Result<PageGuard> NewPage();

  /// Frees page `id` on disk. The page must not be pinned; any cached copy
  /// is dropped without write-back.
  Status DeletePage(PageId id);

  /// Writes back one dirty page, keeping it cached.
  Status FlushPage(PageId id);

  /// Writes back all dirty pages, keeping them cached.
  Status FlushAll();

  /// Writes back all dirty pages and drops every unpinned frame. With no
  /// outstanding pins this empties the pool — the library's equivalent of
  /// the paper's cold-buffer protocol.
  Status FlushAndEvictAll();

  size_t capacity() const { return frames_.size(); }
  size_t page_size() const { return page_size_; }
  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats{}; }

  /// Number of currently pinned frames (for tests / leak detection).
  size_t pinned_frames() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool referenced = false;
    uint64_t last_used = 0;  // LRU timestamp
    std::vector<char> data;
  };

  /// Finds a frame to (re)use, evicting an unpinned page if needed.
  Result<size_t> AcquireFrame();

  /// Victim selection under each policy; returns the frame index or an
  /// error when every frame is pinned.
  Result<size_t> PickClockVictim();
  Result<size_t> PickLruVictim();

  void Unpin(size_t frame_index);
  void MarkDirty(size_t frame_index) { frames_[frame_index].dirty = true; }
  const char* FrameData(size_t frame_index) const {
    return frames_[frame_index].data.data();
  }
  char* MutableFrameData(size_t frame_index) {
    frames_[frame_index].dirty = true;
    return frames_[frame_index].data.data();
  }

  /// One read attempt against the disk, with bounded retry-with-backoff for
  /// transient (kIOError) failures. kCorruption is never retried.
  Status ReadWithRetry(PageId id, char* buf);

  Disk* disk_;
  size_t page_size_;
  size_t read_retry_limit_;
  uint64_t read_retry_backoff_micros_;
  std::vector<Frame> frames_;
  std::vector<size_t> free_frames_;
  std::unordered_map<PageId, size_t> page_table_;
  size_t clock_hand_ = 0;
  EvictionPolicy eviction_;
  uint64_t tick_ = 0;
  BufferPoolStats stats_;
  PageId last_disk_read_ = kInvalidPageId;
};

}  // namespace paradise
