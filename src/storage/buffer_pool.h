// BufferPool: fixed-capacity page cache over the DiskManager with clock
// eviction, pin counting, dirty tracking, and hit/miss statistics. Every
// higher-level structure (fact file, B-trees, bitmaps, array chunks) does
// its page I/O through this class, so both query engines compete under the
// same I/O accounting — mirroring the paper, where both run inside Paradise
// on one SHORE buffer pool.
//
// The pool is safe for concurrent use: frames are partitioned into shards
// (PageId hash → shard), each shard independently latched with its own
// clock hand, free list, page table and statistics, so parallel workers
// fetching distinct pages never contend and a disk read on one shard never
// blocks hits on any other. Within one shard a miss drops the latch for the
// disk read (the frame is reserved with an io-in-progress flag; concurrent
// fetches of the same page wait on it rather than duplicating the I/O).
// Latch ordering: shard latch before disk mutex; no path takes two shard
// latches at once (cross-shard operations visit shards one at a time).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/options.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace paradise {

class BufferPool;

/// Counters exposed for benchmarking. `logical_reads` counts FetchPage
/// calls; `disk_reads` counts the subset that missed the pool. Disk reads
/// are further classified: a read of the page physically following the
/// previous disk read is `seq_disk_reads`, anything else `rand_disk_reads` —
/// the split the 1997 I/O cost model in query/engine.h uses.
struct BufferPoolStats {
  uint64_t logical_reads = 0;
  uint64_t hits = 0;
  uint64_t disk_reads = 0;
  uint64_t seq_disk_reads = 0;
  uint64_t rand_disk_reads = 0;
  uint64_t disk_writes = 0;
  uint64_t evictions = 0;
  /// Disk reads re-issued after a transient (kIOError) failure.
  uint64_t read_retries = 0;
  /// Fetches that found another thread's read of the same page already in
  /// flight and waited on it instead of duplicating the I/O.
  uint64_t coalesced_reads = 0;
  /// Chunk blobs read ahead of consumers by the background I/O pool, the
  /// subset a consumer later took without waiting, and the subset that was
  /// read ahead but never consumed (see ChunkReadAhead).
  uint64_t prefetched = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;

  /// Counter-wise `*this - earlier`, saturating at 0: if ResetStats() ran
  /// between the two snapshots (as the bench harness does between warm-up
  /// and measured runs) the later counters can be smaller, and a raw
  /// unsigned subtract would report ~2^64 events.
  BufferPoolStats Delta(const BufferPoolStats& earlier) const {
    auto sat = [](uint64_t a, uint64_t b) { return a >= b ? a - b : 0; };
    BufferPoolStats d;
    d.logical_reads = sat(logical_reads, earlier.logical_reads);
    d.hits = sat(hits, earlier.hits);
    d.disk_reads = sat(disk_reads, earlier.disk_reads);
    d.seq_disk_reads = sat(seq_disk_reads, earlier.seq_disk_reads);
    d.rand_disk_reads = sat(rand_disk_reads, earlier.rand_disk_reads);
    d.disk_writes = sat(disk_writes, earlier.disk_writes);
    d.evictions = sat(evictions, earlier.evictions);
    d.read_retries = sat(read_retries, earlier.read_retries);
    d.coalesced_reads = sat(coalesced_reads, earlier.coalesced_reads);
    d.prefetched = sat(prefetched, earlier.prefetched);
    d.prefetch_hits = sat(prefetch_hits, earlier.prefetch_hits);
    d.prefetch_wasted = sat(prefetch_wasted, earlier.prefetch_wasted);
    return d;
  }
};

/// RAII pin on a buffered page. While alive, the frame cannot be evicted.
/// `mutable_data()` marks the page dirty. Movable, not copyable.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t shard_index, size_t frame_index,
            PageId page_id)
      : pool_(pool),
        shard_index_(shard_index),
        frame_index_(frame_index),
        page_id_(page_id) {}
  ~PageGuard() { Release(); }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;

  bool valid() const { return pool_ != nullptr; }
  PageId page_id() const { return page_id_; }

  /// Read-only view of the page bytes.
  const char* data() const;

  /// Writable view; marks the page dirty.
  char* mutable_data();

  /// Drops the pin early.
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  size_t shard_index_ = 0;
  size_t frame_index_ = 0;
  PageId page_id_ = kInvalidPageId;
};

class BufferPool {
 public:
  BufferPool(Disk* disk, const StorageOptions& options);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pinned guard on page `id`, reading it from disk on a miss.
  /// Safe to call from any thread.
  Result<PageGuard> FetchPage(PageId id);

  /// Allocates a fresh zeroed page and returns it pinned (and dirty).
  Result<PageGuard> NewPage();

  /// Frees page `id` on disk. The page must not be pinned; any cached copy
  /// is dropped without write-back.
  Status DeletePage(PageId id);

  /// Writes back one dirty page, keeping it cached.
  Status FlushPage(PageId id);

  /// Writes back all dirty pages, keeping them cached.
  Status FlushAll();

  /// Writes back all dirty pages and drops every unpinned frame. With no
  /// outstanding pins this empties the pool — the library's equivalent of
  /// the paper's cold-buffer protocol.
  Status FlushAndEvictAll();

  size_t capacity() const { return capacity_; }
  size_t page_size() const { return page_size_; }
  size_t num_shards() const { return shards_.size(); }

  /// Aggregated counters across all shards. Consistent only when no fetches
  /// are concurrently in flight (the benches read stats between queries).
  BufferPoolStats stats() const;
  void ResetStats();

  /// Read-ahead accounting hooks used by ChunkReadAhead.
  void RecordPrefetch();
  void RecordPrefetchHit();
  void RecordPrefetchWasted(uint64_t n);

  /// Number of currently pinned frames (for tests / leak detection).
  size_t pinned_frames() const;

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool dirty = false;
    bool referenced = false;
    /// Set while the owning fetch reads the page from disk outside the shard
    /// latch; concurrent fetches of the same page wait on `io_cv`.
    bool io_in_progress = false;
    uint64_t last_used = 0;  // LRU timestamp
    std::vector<char> data;
  };

  /// One independently latched pool partition.
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable io_cv;
    std::vector<Frame> frames;
    std::vector<size_t> free_frames;
    std::unordered_map<PageId, size_t> page_table;
    size_t clock_hand = 0;
    uint64_t tick = 0;
    BufferPoolStats stats;
  };

  size_t ShardIndex(PageId id) const {
    // Cheap integer mix so physically clustered page runs still spread
    // across shards instead of striding one shard per run modulus.
    uint64_t h = id * UINT64_C(0x9e3779b97f4a7c15);
    return static_cast<size_t>(h >> 32) % shards_.size();
  }

  /// Finds a frame to (re)use in `s`, evicting an unpinned page if needed.
  /// Called with the shard latch held.
  Result<size_t> AcquireFrame(Shard& s);

  /// Victim selection under each policy; returns the frame index or an
  /// error when every frame is pinned. Shard latch held.
  Result<size_t> PickClockVictim(Shard& s);
  Result<size_t> PickLruVictim(Shard& s);

  void Unpin(size_t shard_index, size_t frame_index);
  const char* FrameData(size_t shard_index, size_t frame_index) const;
  char* MutableFrameData(size_t shard_index, size_t frame_index);

  /// One read attempt against the disk, with bounded retry-with-backoff for
  /// transient (kIOError) failures. kCorruption is never retried. Called
  /// WITHOUT any shard latch held; retry counts land in `s.stats` after the
  /// latch is re-taken by the caller.
  Status ReadWithRetry(PageId id, char* buf, uint64_t* retries);

  /// Classifies a completed disk read as sequential or random and bumps the
  /// shard's counters. Shard latch held.
  void CountDiskRead(Shard& s, PageId id);

  Disk* disk_;
  size_t page_size_;
  size_t capacity_;
  size_t read_retry_limit_;
  uint64_t read_retry_backoff_micros_;
  EvictionPolicy eviction_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Global last-read page for seq/rand classification; atomic so the
  /// classification stays exact for serial workloads and merely approximate
  /// under concurrency.
  std::atomic<PageId> last_disk_read_{kInvalidPageId};
  std::atomic<uint64_t> prefetched_{0};
  std::atomic<uint64_t> prefetch_hits_{0};
  std::atomic<uint64_t> prefetch_wasted_{0};

  /// Process-wide registry mirrors ("bufferpool.*" / "prefetch.*"), resolved
  /// once at construction when StorageOptions::metrics_enabled is set and
  /// null otherwise — the disabled hot-path cost is one pointer test.
  struct Mirror {
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* evictions = nullptr;
    Counter* coalesced_reads = nullptr;
    Counter* disk_writes = nullptr;
    Counter* read_retries = nullptr;
    Counter* prefetched = nullptr;
    Counter* prefetch_hits = nullptr;
    Counter* prefetch_wasted = nullptr;
  };
  Mirror mirror_;
};

}  // namespace paradise
