#include "storage/large_object.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace paradise {

namespace {

// Header page layout:
//   [0,4)   magic "LOBH"
//   [4,12)  object length in bytes
//   [12,16) total data-page count
//   [16,24) next directory PageId (kInvalidPageId if none)
//   [24,28) number of data-page ids stored in this page
//   [28,..) data-page ids, 8 bytes each
// Overflow directory page layout:
//   [0,8)   next directory PageId
//   [8,12)  number of ids in this page
//   [12,..) data-page ids
constexpr char kLobMagic[4] = {'L', 'O', 'B', 'H'};
constexpr size_t kHeaderMagic = 0;
constexpr size_t kHeaderLength = 4;
constexpr size_t kHeaderPageCount = 12;
constexpr size_t kHeaderNextDir = 16;
constexpr size_t kHeaderIdCount = 24;
constexpr size_t kHeaderIdsStart = 28;
constexpr size_t kDirNext = 0;
constexpr size_t kDirIdCount = 8;
constexpr size_t kDirIdsStart = 12;

size_t HeaderIdCapacity(size_t page_size) {
  return (page_size - kHeaderIdsStart) / 8;
}
size_t DirIdCapacity(size_t page_size) {
  return (page_size - kDirIdsStart) / 8;
}

}  // namespace

Result<ObjectId> LargeObjectStore::Create(std::string_view data) {
  const size_t page_size = pool_->page_size();
  const uint64_t num_data_pages = (data.size() + page_size - 1) / page_size;

  // Write the data pages.
  std::vector<PageId> data_pages;
  data_pages.reserve(num_data_pages);
  for (uint64_t i = 0; i < num_data_pages; ++i) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
    const uint64_t begin = i * page_size;
    const uint64_t n = std::min<uint64_t>(page_size, data.size() - begin);
    std::memcpy(guard.mutable_data(), data.data() + begin, n);
    data_pages.push_back(guard.page_id());
  }

  // Allocate and fill the header (plus overflow directory chain).
  PARADISE_ASSIGN_OR_RETURN(PageGuard header, pool_->NewPage());
  const ObjectId oid = header.page_id();
  header.Release();
  PARADISE_RETURN_IF_ERROR(WriteDirectory(oid, data.size(), data_pages));
  return oid;
}

Status LargeObjectStore::WriteDirectory(ObjectId oid, uint64_t length,
                                        const std::vector<PageId>& data_pages) {
  const size_t page_size = pool_->page_size();
  const size_t header_cap = HeaderIdCapacity(page_size);
  const size_t dir_cap = DirIdCapacity(page_size);

  // Allocate overflow pages first so the header can point at the chain head.
  size_t remaining =
      data_pages.size() > header_cap ? data_pages.size() - header_cap : 0;
  const size_t num_dir_pages = (remaining + dir_cap - 1) / dir_cap;
  std::vector<PageId> dir_pages(num_dir_pages);
  for (size_t i = 0; i < num_dir_pages; ++i) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->NewPage());
    dir_pages[i] = g.page_id();
  }

  {
    PARADISE_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(oid));
    char* h = header.mutable_data();
    std::memset(h, 0, page_size);
    std::memcpy(h + kHeaderMagic, kLobMagic, sizeof(kLobMagic));
    EncodeFixed64(h + kHeaderLength, length);
    EncodeFixed32(h + kHeaderPageCount,
                  static_cast<uint32_t>(data_pages.size()));
    EncodeFixed64(h + kHeaderNextDir,
                  dir_pages.empty() ? kInvalidPageId : dir_pages[0]);
    const size_t in_header = std::min(header_cap, data_pages.size());
    EncodeFixed32(h + kHeaderIdCount, static_cast<uint32_t>(in_header));
    for (size_t i = 0; i < in_header; ++i) {
      EncodeFixed64(h + kHeaderIdsStart + i * 8, data_pages[i]);
    }
  }

  size_t next_id = header_cap;
  for (size_t d = 0; d < num_dir_pages; ++d) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(dir_pages[d]));
    char* p = g.mutable_data();
    std::memset(p, 0, page_size);
    EncodeFixed64(p + kDirNext,
                  d + 1 < num_dir_pages ? dir_pages[d + 1] : kInvalidPageId);
    const size_t in_page = std::min(dir_cap, data_pages.size() - next_id);
    EncodeFixed32(p + kDirIdCount, static_cast<uint32_t>(in_page));
    for (size_t i = 0; i < in_page; ++i) {
      EncodeFixed64(p + kDirIdsStart + i * 8, data_pages[next_id + i]);
    }
    next_id += in_page;
  }
  return Status::OK();
}

Status LargeObjectStore::CollectPages(
    ObjectId oid, uint64_t* length, std::vector<PageId>* data_pages,
    std::vector<PageId>* directory_pages) const {
  data_pages->clear();
  if (directory_pages != nullptr) directory_pages->clear();
  uint32_t total_pages = 0;
  PageId next_dir = kInvalidPageId;
  {
    PARADISE_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(oid));
    const char* h = header.data();
    if (std::memcmp(h + kHeaderMagic, kLobMagic, sizeof(kLobMagic)) != 0) {
      return Status::Corruption("not a large object: page " +
                                std::to_string(oid));
    }
    *length = DecodeFixed64(h + kHeaderLength);
    total_pages = DecodeFixed32(h + kHeaderPageCount);
    next_dir = DecodeFixed64(h + kHeaderNextDir);
    const uint32_t in_header = DecodeFixed32(h + kHeaderIdCount);
    data_pages->reserve(total_pages);
    for (uint32_t i = 0; i < in_header; ++i) {
      data_pages->push_back(DecodeFixed64(h + kHeaderIdsStart + i * 8));
    }
  }
  while (next_dir != kInvalidPageId) {
    if (directory_pages != nullptr) directory_pages->push_back(next_dir);
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(next_dir));
    const char* p = g.data();
    const uint32_t in_page = DecodeFixed32(p + kDirIdCount);
    for (uint32_t i = 0; i < in_page; ++i) {
      data_pages->push_back(DecodeFixed64(p + kDirIdsStart + i * 8));
    }
    next_dir = DecodeFixed64(p + kDirNext);
  }
  if (data_pages->size() != total_pages) {
    return Status::Corruption("large object " + std::to_string(oid) +
                              " directory lists " +
                              std::to_string(data_pages->size()) +
                              " pages, header says " +
                              std::to_string(total_pages));
  }
  return Status::OK();
}

Result<std::string> LargeObjectStore::Read(ObjectId oid) const {
  uint64_t length = 0;
  std::vector<PageId> data_pages;
  PARADISE_RETURN_IF_ERROR(CollectPages(oid, &length, &data_pages, nullptr));
  const size_t page_size = pool_->page_size();
  std::string out;
  out.resize(length);
  for (size_t i = 0; i < data_pages.size(); ++i) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard g, pool_->FetchPage(data_pages[i]));
    const uint64_t begin = i * page_size;
    const uint64_t n = std::min<uint64_t>(page_size, length - begin);
    std::memcpy(out.data() + begin, g.data(), n);
  }
  return out;
}

Result<std::string> LargeObjectStore::ReadRange(ObjectId oid, uint64_t offset,
                                                uint64_t read_len) const {
  uint64_t length = 0;
  std::vector<PageId> data_pages;
  PARADISE_RETURN_IF_ERROR(CollectPages(oid, &length, &data_pages, nullptr));
  if (offset + read_len > length) {
    return Status::OutOfRange("read [" + std::to_string(offset) + ", " +
                              std::to_string(offset + read_len) +
                              ") beyond object of " + std::to_string(length) +
                              " bytes");
  }
  const size_t page_size = pool_->page_size();
  std::string out;
  out.resize(read_len);
  uint64_t written = 0;
  while (written < read_len) {
    const uint64_t pos = offset + written;
    const uint64_t page_idx = pos / page_size;
    const uint64_t in_page = pos % page_size;
    const uint64_t n = std::min<uint64_t>(page_size - in_page,
                                          read_len - written);
    PARADISE_ASSIGN_OR_RETURN(PageGuard g,
                              pool_->FetchPage(data_pages[page_idx]));
    std::memcpy(out.data() + written, g.data() + in_page, n);
    written += n;
  }
  return out;
}

Result<uint64_t> LargeObjectStore::Size(ObjectId oid) const {
  PARADISE_ASSIGN_OR_RETURN(PageGuard header, pool_->FetchPage(oid));
  const char* h = header.data();
  if (std::memcmp(h + kHeaderMagic, kLobMagic, sizeof(kLobMagic)) != 0) {
    return Status::Corruption("not a large object: page " +
                              std::to_string(oid));
  }
  return DecodeFixed64(h + kHeaderLength);
}

Status LargeObjectStore::Overwrite(ObjectId oid, std::string_view data) {
  uint64_t length = 0;
  std::vector<PageId> old_data, old_dirs;
  PARADISE_RETURN_IF_ERROR(CollectPages(oid, &length, &old_data, &old_dirs));
  for (PageId p : old_data) PARADISE_RETURN_IF_ERROR(pool_->DeletePage(p));
  for (PageId p : old_dirs) PARADISE_RETURN_IF_ERROR(pool_->DeletePage(p));

  const size_t page_size = pool_->page_size();
  const uint64_t num_data_pages = (data.size() + page_size - 1) / page_size;
  std::vector<PageId> data_pages;
  data_pages.reserve(num_data_pages);
  for (uint64_t i = 0; i < num_data_pages; ++i) {
    PARADISE_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
    const uint64_t begin = i * page_size;
    const uint64_t n = std::min<uint64_t>(page_size, data.size() - begin);
    std::memcpy(guard.mutable_data(), data.data() + begin, n);
    data_pages.push_back(guard.page_id());
  }
  return WriteDirectory(oid, data.size(), data_pages);
}

Status LargeObjectStore::Free(ObjectId oid) {
  uint64_t length = 0;
  std::vector<PageId> data_pages, dir_pages;
  PARADISE_RETURN_IF_ERROR(CollectPages(oid, &length, &data_pages, &dir_pages));
  for (PageId p : data_pages) PARADISE_RETURN_IF_ERROR(pool_->DeletePage(p));
  for (PageId p : dir_pages) PARADISE_RETURN_IF_ERROR(pool_->DeletePage(p));
  return pool_->DeletePage(oid);
}

Result<uint64_t> LargeObjectStore::PageFootprint(ObjectId oid) const {
  uint64_t length = 0;
  std::vector<PageId> data_pages, dir_pages;
  PARADISE_RETURN_IF_ERROR(CollectPages(oid, &length, &data_pages, &dir_pages));
  return 1 + data_pages.size() + dir_pages.size();
}

}  // namespace paradise
