// Page identifiers and the on-disk database-file header layout shared by the
// disk manager and the buffer pool.
#pragma once

#include <cstdint>
#include <limits>

namespace paradise {

/// Physical page number within the database file. Page 0 is the file header
/// and is never handed out by the allocator.
using PageId = uint64_t;

inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Object identifier for a large object: the PageId of its header page.
using ObjectId = PageId;

inline constexpr ObjectId kInvalidObjectId = kInvalidPageId;

namespace page_header {

// Layout of the database-file header (page 0), all little-endian:
//   [0,8)   magic "PRDSARRY"
//   [8,12)  page size
//   [12,20) page count (including the header page)
//   [20,28) free-list head PageId (kInvalidPageId if empty)
//   [28,36) root-catalog ObjectId (kInvalidObjectId if absent)
inline constexpr char kMagic[8] = {'P', 'R', 'D', 'S', 'A', 'R', 'R', 'Y'};
inline constexpr size_t kMagicOffset = 0;
inline constexpr size_t kPageSizeOffset = 8;
inline constexpr size_t kPageCountOffset = 12;
inline constexpr size_t kFreeListOffset = 20;
inline constexpr size_t kCatalogOffset = 28;
inline constexpr size_t kHeaderBytes = 36;

}  // namespace page_header

}  // namespace paradise
