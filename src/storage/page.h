// Page identifiers and the on-disk database-file header layout shared by the
// disk manager and the buffer pool.
#pragma once

#include <cstdint>
#include <limits>

namespace paradise {

/// Physical page number within the database file. Page 0 is the file header
/// and is never handed out by the allocator.
using PageId = uint64_t;

inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Object identifier for a large object: the PageId of its header page.
using ObjectId = PageId;

inline constexpr ObjectId kInvalidObjectId = kInvalidPageId;

namespace page_header {

// Layout of the database-file header (page 0), all little-endian:
//   [0,8)   magic "PRDSARRY"
//   [8,12)  page size
//   [12,20) page count (including the header page)
//   [20,28) free-list head PageId (kInvalidPageId if empty)
//   [28,36) root-catalog ObjectId (kInvalidObjectId if absent)
//   [36,40) format version (v2+; zero on legacy v1 files, whose headers end
//           at byte 36 with the rest of the page zeroed)
inline constexpr char kMagic[8] = {'P', 'R', 'D', 'S', 'A', 'R', 'R', 'Y'};
inline constexpr size_t kMagicOffset = 0;
inline constexpr size_t kPageSizeOffset = 8;
inline constexpr size_t kPageCountOffset = 12;
inline constexpr size_t kFreeListOffset = 20;
inline constexpr size_t kCatalogOffset = 28;
inline constexpr size_t kVersionOffset = 36;
inline constexpr size_t kHeaderBytes = 40;

/// Format versions. v1 (the seed format) stores bare pages; v2 appends a
/// kPageTrailerBytes trailer to every physical page holding a masked CRC32C
/// of the page contents and its PageId (DESIGN.md "Page format v2"); v3
/// additionally reserves pages 1 and 2 as a dual-slot commit manifest and
/// treats the page-0 header as immutable after Create (DESIGN.md "Crash
/// consistency").
inline constexpr uint32_t kFormatLegacy = 1;
inline constexpr uint32_t kFormatChecksummed = 2;
inline constexpr uint32_t kFormatManifest = 3;
/// v4 keeps v3's physical layout (per-page CRC trailers + dual-slot
/// manifest) unchanged; the bump marks files that may carry incremental
/// ingest state ("ingest.*" catalog roots holding spilled delta
/// generations, src/ingest/). Pre-v4 readers reject them instead of
/// silently ignoring uncompacted deltas.
inline constexpr uint32_t kFormatIngest = 4;
/// v5 keeps v4's physical layout unchanged; the bump marks files whose OLAP
/// arrays may store chunks in the bit-packed codecs (ChunkFormat
/// kDiffSequence / kBitPacked, array/chunk.cc). Pre-v5 readers reject them
/// instead of tripping over unknown chunk tags mid-scan; this build never
/// writes a packed chunk into a file created at version < 5.
inline constexpr uint32_t kFormatCodecs = 5;
inline constexpr uint32_t kMaxSupportedFormat = kFormatCodecs;

// v2 per-page trailer, appended after the page's page_size data bytes:
//   [0,4)  masked CRC32C over (data bytes || fixed64 PageId)
//   [4,8)  reserved, written as zero
inline constexpr size_t kPageTrailerBytes = 8;

/// Distance in bytes between the starts of consecutive physical pages.
inline constexpr uint64_t PhysicalStride(uint32_t format_version,
                                         size_t page_size) {
  return format_version >= kFormatChecksummed
             ? page_size + kPageTrailerBytes
             : page_size;
}

// v3 dual-slot commit manifest. Pages 1 and 2 each hold one manifest record;
// a commit with epoch E writes slot page ManifestSlotPage(E), so successive
// commits alternate slots and a torn manifest write can only damage the slot
// being written, never the previously committed one. Open() parses both
// slots raw (ignoring the page trailer, which a torn write may also have
// damaged) and adopts the record with the highest epoch whose internal CRC
// validates. Record layout, little-endian:
//   [0,8)   magic "PRDSMNFS"
//   [8,16)  commit epoch (monotonic, starts at 1 for Create's commit)
//   [16,24) page count (including header + manifest pages)
//   [24,32) free-list head PageId (kInvalidPageId if empty)
//   [32,40) root-catalog ObjectId (kInvalidObjectId if absent)
//   [40,44) load state (kLoadCommitted / kLoadBuilding)
//   [44,48) masked CRC32C over bytes [0,44)
inline constexpr char kManifestMagic[8] = {'P', 'R', 'D', 'S',
                                           'M', 'N', 'F', 'S'};
inline constexpr size_t kManifestMagicOffset = 0;
inline constexpr size_t kManifestEpochOffset = 8;
inline constexpr size_t kManifestPageCountOffset = 16;
inline constexpr size_t kManifestFreeListOffset = 24;
inline constexpr size_t kManifestCatalogOffset = 32;
inline constexpr size_t kManifestLoadStateOffset = 40;
inline constexpr size_t kManifestCrcOffset = 44;
inline constexpr size_t kManifestBytes = 48;

inline constexpr PageId kManifestSlotPages[2] = {1, 2};

/// Slot page written by the commit with the given epoch.
inline constexpr PageId ManifestSlotPage(uint64_t epoch) {
  return kManifestSlotPages[epoch & 1];
}

/// Load-state values carried in the manifest: a database file is `building`
/// from Database::Create until FinishLoad's final commit marks it
/// `committed`; Open() on a building file reports an incomplete load.
inline constexpr uint32_t kLoadCommitted = 0;
inline constexpr uint32_t kLoadBuilding = 1;

/// First PageId the allocator may hand out for the given format (v3 reserves
/// the two manifest slot pages after the header).
inline constexpr PageId FirstUserPage(uint32_t format_version) {
  return format_version >= kFormatManifest ? 3 : 1;
}

}  // namespace page_header

}  // namespace paradise
