// Page identifiers and the on-disk database-file header layout shared by the
// disk manager and the buffer pool.
#pragma once

#include <cstdint>
#include <limits>

namespace paradise {

/// Physical page number within the database file. Page 0 is the file header
/// and is never handed out by the allocator.
using PageId = uint64_t;

inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Object identifier for a large object: the PageId of its header page.
using ObjectId = PageId;

inline constexpr ObjectId kInvalidObjectId = kInvalidPageId;

namespace page_header {

// Layout of the database-file header (page 0), all little-endian:
//   [0,8)   magic "PRDSARRY"
//   [8,12)  page size
//   [12,20) page count (including the header page)
//   [20,28) free-list head PageId (kInvalidPageId if empty)
//   [28,36) root-catalog ObjectId (kInvalidObjectId if absent)
//   [36,40) format version (v2+; zero on legacy v1 files, whose headers end
//           at byte 36 with the rest of the page zeroed)
inline constexpr char kMagic[8] = {'P', 'R', 'D', 'S', 'A', 'R', 'R', 'Y'};
inline constexpr size_t kMagicOffset = 0;
inline constexpr size_t kPageSizeOffset = 8;
inline constexpr size_t kPageCountOffset = 12;
inline constexpr size_t kFreeListOffset = 20;
inline constexpr size_t kCatalogOffset = 28;
inline constexpr size_t kVersionOffset = 36;
inline constexpr size_t kHeaderBytes = 40;

/// Format versions. v1 (the seed format) stores bare pages; v2 appends a
/// kPageTrailerBytes trailer to every physical page holding a masked CRC32C
/// of the page contents and its PageId (DESIGN.md "Page format v2").
inline constexpr uint32_t kFormatLegacy = 1;
inline constexpr uint32_t kFormatChecksummed = 2;

// v2 per-page trailer, appended after the page's page_size data bytes:
//   [0,4)  masked CRC32C over (data bytes || fixed64 PageId)
//   [4,8)  reserved, written as zero
inline constexpr size_t kPageTrailerBytes = 8;

/// Distance in bytes between the starts of consecutive physical pages.
inline constexpr uint64_t PhysicalStride(uint32_t format_version,
                                         size_t page_size) {
  return format_version >= kFormatChecksummed
             ? page_size + kPageTrailerBytes
             : page_size;
}

}  // namespace page_header

}  // namespace paradise
