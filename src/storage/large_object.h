// LargeObjectStore: variable-length byte objects spanning many pages, the
// library's stand-in for SHORE large objects. Array chunks, bitmaps, and
// serialized metadata are all stored as large objects. An object is
// addressed by the PageId of its header page, which holds the length and a
// (possibly chained) directory of data-page ids.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace paradise {

class LargeObjectStore {
 public:
  explicit LargeObjectStore(BufferPool* pool) : pool_(pool) {}

  /// Creates a new object holding `data`; returns its ObjectId.
  Result<ObjectId> Create(std::string_view data);

  /// Reads the whole object into a string.
  Result<std::string> Read(ObjectId oid) const;

  /// Reads `length` bytes starting at `offset`. Out-of-range reads fail.
  Result<std::string> ReadRange(ObjectId oid, uint64_t offset,
                                uint64_t length) const;

  /// Byte length of the object.
  Result<uint64_t> Size(ObjectId oid) const;

  /// Replaces the object's contents in place (same ObjectId). The old data
  /// pages are freed and new ones allocated.
  Status Overwrite(ObjectId oid, std::string_view data);

  /// Frees the object's pages (header, directory chain, and data).
  Status Free(ObjectId oid);

  /// Number of pages the object occupies, including header and directory
  /// pages (for storage accounting in the benches).
  Result<uint64_t> PageFootprint(ObjectId oid) const;

 private:
  /// Collects the data-page ids and directory-page ids of an object.
  Status CollectPages(ObjectId oid, uint64_t* length,
                      std::vector<PageId>* data_pages,
                      std::vector<PageId>* directory_pages) const;

  /// Writes the page-id directory (header + overflow chain) for `data_pages`
  /// into object `oid`, allocating overflow pages as needed.
  Status WriteDirectory(ObjectId oid, uint64_t length,
                        const std::vector<PageId>& data_pages);

  BufferPool* pool_;
};

}  // namespace paradise
